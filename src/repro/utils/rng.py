"""Deterministic random-number streams.

Every stochastic element of the reproduction (synthetic path populations,
data-dependent delay jitter, random program generation) draws from a named
:class:`RngStream`.  Streams are derived from a root seed and a string name,
so two independent subsystems never share or perturb each other's sequence,
and every experiment is exactly reproducible from its configuration.
"""

import hashlib

import numpy as np

#: Root seed used across the project unless an experiment overrides it.
DEFAULT_SEED = 0x0DA7E2015


def derive_seed(root_seed, name):
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so that the mapping is stable across Python versions and
    platforms (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed:#x}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A named, seeded random stream backed by ``numpy.random.Generator``.

    Parameters
    ----------
    name:
        Identifier of the stream; two streams with different names derived
        from the same root seed are statistically independent.
    root_seed:
        Root seed of the experiment.
    """

    def __init__(self, name, root_seed=DEFAULT_SEED):
        self.name = name
        self.root_seed = root_seed
        self.seed = derive_seed(root_seed, name)
        self._gen = np.random.Generator(np.random.PCG64(self.seed))

    def child(self, suffix):
        """Derive an independent sub-stream, e.g. per benchmark or stage."""
        return RngStream(f"{self.name}/{suffix}", self.root_seed)

    # -- thin wrappers over numpy.random.Generator -------------------------

    def uniform(self, low=0.0, high=1.0):
        return float(self._gen.uniform(low, high))

    def normal(self, loc=0.0, scale=1.0):
        return float(self._gen.normal(loc, scale))

    def triangular(self, left, mode, right):
        return float(self._gen.triangular(left, mode, right))

    def beta(self, a, b):
        return float(self._gen.beta(a, b))

    def integers(self, low, high):
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq, p=None):
        index = int(self._gen.choice(len(seq), p=p))
        return seq[index]

    def shuffle(self, items):
        """Shuffle a list in place."""
        self._gen.shuffle(items)

    def sample_array(self, distribution, size, **kwargs):
        """Draw ``size`` samples from a named numpy distribution."""
        fn = getattr(self._gen, distribution)
        return fn(size=size, **kwargs)


def hash_to_unit_float(*parts):
    """Map arbitrary hashable parts to a deterministic float in [0, 1).

    Used for *value-dependent* pseudo-randomness: the same operands always
    excite the same paths, which is what real hardware does.  This is pure
    (no stream state), unlike :class:`RngStream`.
    """
    text = "|".join(str(p) for p in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") / float(1 << 64)
