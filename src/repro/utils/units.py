"""Physical-unit conversions.

Conventions across the project:

- delays / clock periods: **picoseconds** (float)
- frequencies: **MHz** (float)
- voltages: **volts** (float)
- power: **microwatts** (float)
- energy: **picojoules** (float)
"""

PS_PER_SECOND = 1e12
MHZ_PER_HZ = 1e-6


def ps_to_mhz(period_ps):
    """Convert a clock period in picoseconds to a frequency in MHz.

    >>> round(ps_to_mhz(2026.0), 1)
    493.6
    """
    if period_ps <= 0:
        raise ValueError(f"period must be positive, got {period_ps}")
    return PS_PER_SECOND / period_ps * MHZ_PER_HZ


def mhz_to_ps(freq_mhz):
    """Convert a frequency in MHz to a clock period in picoseconds."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return PS_PER_SECOND / (freq_mhz / MHZ_PER_HZ)


def uw_per_mhz(power_uw, freq_mhz):
    """Energy-efficiency metric used in the paper: µW per MHz."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return power_uw / freq_mhz


def speedup_percent(baseline_period_ps, improved_period_ps):
    """Speedup of a shorter average period over a baseline, in percent.

    ``speedup_percent(2026, 1334)`` is about 51.9 — the paper's ~50 % genie
    bound (they round the ratio of mean delays).
    """
    if improved_period_ps <= 0:
        raise ValueError("improved period must be positive")
    return (baseline_period_ps / improved_period_ps - 1.0) * 100.0
