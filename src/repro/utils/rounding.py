"""Vectorized decimal rounding that matches ``round(x, 3)`` bit-for-bit.

The timing stack rounds every scaled delay (and the event-log timestamps)
to 3 decimal places with Python's ``round``, which performs *correct*
decimal rounding.  ``np.round`` scales by 1000, rounds to the nearest
integer and divides back — almost always the same float, but the scaling
step can carry the value across a half-way boundary and flip the rounded
digit.  Bit-identity between the scalar reference paths and the array
engines is non-negotiable here, so :func:`round3_array` uses the fast
scaled path and re-rounds the rare candidates whose scaled value sits
within float-error distance of a half-integer with Python's ``round``.
"""

import numpy as np

#: Relative width of the "too close to .5 to trust the fast path" band.
#: The error of ``x * 1000.0`` is below one ulp (2^-52 relative); a few
#: orders of magnitude of slack costs only spurious scalar re-rounds.
_HALFWAY_EPS = 1e-12


def round3_array(values):
    """Element-wise ``round(x, 3)`` with Python-``round`` semantics."""
    values = np.asarray(values, dtype=float)
    scaled = values * 1000.0
    out = np.rint(scaled) / 1000.0
    distance = np.abs(scaled - np.floor(scaled) - 0.5)
    tolerance = np.maximum(np.abs(scaled), 1.0) * _HALFWAY_EPS
    risky = distance <= tolerance
    if risky.any():
        flat = out.reshape(-1)
        flat_values = values.reshape(-1)
        for index in np.nonzero(risky.reshape(-1))[0]:
            flat[index] = round(float(flat_values[index]), 3)
    return out
