"""Columnar result container shared by every workflow.

A :class:`ResultFrame` is the one result type of the public API
(:mod:`repro.api`): a set of typed NumPy column arrays keyed by a stable
:class:`Column` schema.  Every `Session` method — evaluation sweeps,
drift adaptation, over-scaling scans, training tables — returns one, so
downstream consumers (figures, dashboards, training pipelines) handle a
single shape instead of per-flow lists of result objects.

Column kinds:

``str``
    Labels (programs, configs, design points); stored as object arrays.
``int`` / ``float``
    ``int64`` / ``float64`` arrays — the analysable payload.
``json``
    Ragged JSON-serialisable detail (e.g. per-violation tuples) carried
    losslessly alongside the flat columns; excluded from CSV export.

Invariants:

- ``iter_rows`` yields plain-Python dicts (``json.dumps``-able as-is);
- ``to_json``/``from_json`` and the :class:`~repro.lab.store.ArtifactStore`
  round-trip (``save_frame``/``load_frame``) are lossless — float bits are
  preserved exactly (``repr`` round-trip), which the parity suite relies
  on;
- ``to_csv`` formats values exactly like the historical CSV exports
  (``csv.writer`` over the raw Python values).
"""

import copy
import csv
import io
import json
from dataclasses import dataclass

import numpy as np

#: Valid column kinds.
KINDS = ("str", "int", "float", "json")

_DTYPES = {
    "str": object,
    "int": np.int64,
    "float": np.float64,
    "json": object,
}

#: Aggregation statistics understood by :meth:`ResultFrame.group_by`.
STATS = ("mean", "sum", "min", "max", "count", "first",
         "p50", "p95", "p99")

#: Percentile stats → their percentile rank (linear interpolation, as
#: ``np.percentile``); the dashboard cuts for violation-rate and
#: learned-vs-LUT period comparisons.
_PERCENTILES = {"p50": 50.0, "p95": 95.0, "p99": 99.0}


@dataclass(frozen=True)
class Column:
    """One schema entry: column name + kind."""

    name: str
    kind: str

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown column kind {self.kind!r}; choose from {KINDS}"
            )


def schema(*pairs):
    """Build a schema tuple from ``(name, kind)`` pairs."""
    return tuple(Column(name, kind) for name, kind in pairs)


#: Schema of one evaluation row — matches the sweep runner's canonical
#: JSON row (:func:`repro.lab.runner.result_to_dict`) field for field,
#: so runner results, Session evaluations and stored sweep documents all
#: share one layout.
EVALUATION_SCHEMA = schema(
    ("design_point", "str"),
    ("variant", "str"),
    ("voltage", "float"),
    ("config", "str"),
    ("policy", "str"),
    ("generator", "str"),
    ("margin_percent", "float"),
    ("program", "str"),
    ("num_cycles", "int"),
    ("num_retired", "int"),
    ("total_time_ps", "float"),
    ("static_period_ps", "float"),
    ("min_period_ps", "float"),
    ("max_period_ps", "float"),
    ("switch_rate", "float"),
    ("average_period_ps", "float"),
    ("effective_frequency_mhz", "float"),
    ("speedup_percent", "float"),
    ("num_violations", "int"),
    ("violations", "json"),
)

#: Schema of one drift-adaptation row (:meth:`Session.adapt`).
ADAPT_SCHEMA = schema(
    ("program", "str"),
    ("scheme", "str"),
    ("num_cycles", "int"),
    ("total_time_ps", "float"),
    ("violations", "int"),
    ("lut_updates", "int"),
    ("max_drift_seen", "float"),
    ("average_period_ps", "float"),
    ("effective_frequency_mhz", "float"),
)

#: Schema of one over-scaling row (:meth:`Session.overscaling`).
OVERSCALING_SCHEMA = schema(
    ("program", "str"),
    ("overscale_factor", "float"),
    ("num_cycles", "int"),
    ("total_time_ps", "float"),
    ("violation_cycles", "int"),
    ("violation_rate", "float"),
    ("num_approx_results", "int"),
    ("mean_corrupted_bits", "float"),
    ("mean_relative_error", "float"),
    ("violations_by_stage", "json"),
    ("violations_by_class", "json"),
)

#: Schema of one policy-training row (:meth:`Session.training_table`):
#: the evaluation columns plus flat learning targets.
TRAINING_SCHEMA = EVALUATION_SCHEMA + schema(
    ("safe", "int"),
    ("ipc", "float"),
    ("normalized_period", "float"),
)

#: Schema of one telemetry span (:meth:`Session.telemetry_frame`): the
#: span records of :class:`repro.obs.Tracer`, one row per completed
#: span, so traces ride the same frame/store machinery as results.
#: Telemetry frames are observation only — they are never folded into
#: result fingerprints or result bytes.
TELEMETRY_SCHEMA = schema(
    ("span", "str"),
    ("category", "str"),
    ("worker", "str"),
    ("pid", "int"),
    ("depth", "int"),
    ("start_us", "float"),
    ("duration_us", "float"),
    ("cpu_us", "float"),
    ("attrs", "json"),
)


def _coerce(values, kind):
    """Coerce a value sequence to the canonical array of a kind."""
    if kind == "int":
        return np.asarray([int(v) for v in values], dtype=np.int64)
    if kind == "float":
        return np.asarray([float(v) for v in values], dtype=np.float64)
    array = np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        array[index] = str(value) if kind == "str" else value
    return array


def _python_value(value, kind):
    """One cell as a plain-Python scalar (``json.dumps``-able).

    ``json`` cells are deep-copied so callers mutating a returned row
    can never corrupt the frame's backing storage."""
    if kind == "int":
        return int(value)
    if kind == "float":
        return float(value)
    if kind == "json":
        return copy.deepcopy(value)
    return value


class ResultFrame:
    """Columnar results: typed NumPy arrays keyed by a stable schema."""

    def __init__(self, columns, schema):
        self.schema = tuple(schema)
        names = [column.name for column in self.schema]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names in schema")
        if set(columns) != set(names):
            missing = set(names) - set(columns)
            extra = set(columns) - set(names)
            raise ValueError(
                f"columns do not match schema "
                f"(missing: {sorted(missing)}, extra: {sorted(extra)})"
            )
        self._kinds = {column.name: column.kind for column in self.schema}
        self._columns = {}
        length = None
        for name in names:
            array = columns[name]
            if not isinstance(array, np.ndarray):
                array = _coerce(list(array), self._kinds[name])
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ValueError(
                    f"column {name!r} has {len(array)} rows, expected "
                    f"{length}"
                )
            self._columns[name] = array
        self._length = length or 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(cls, rows, schema):
        """Build a frame from an iterable of row dicts."""
        rows = list(rows)
        columns = {
            column.name: _coerce(
                [row[column.name] for row in rows], column.kind
            )
            for column in schema
        }
        return cls(columns, schema)

    @classmethod
    def concat(cls, frames):
        """Concatenate frames sharing one schema, in order."""
        frames = list(frames)
        if not frames:
            raise ValueError("no frames to concatenate")
        schema = frames[0].schema
        for frame in frames[1:]:
            if frame.schema != schema:
                raise ValueError("cannot concatenate mismatched schemas")
        columns = {
            column.name: np.concatenate(
                [frame._columns[column.name] for frame in frames]
            )
            for column in schema
        }
        return cls(columns, schema)

    # -- basic access --------------------------------------------------------

    def __len__(self):
        return self._length

    @property
    def num_rows(self):
        return self._length

    @property
    def column_names(self):
        return tuple(column.name for column in self.schema)

    def kind_of(self, name):
        return self._kinds[name]

    def column(self, name):
        """The backing array of one column (do not mutate)."""
        return self._columns[name]

    def __getitem__(self, name):
        return self._columns[name]

    def row(self, index):
        return {
            column.name: _python_value(
                self._columns[column.name][index], column.kind
            )
            for column in self.schema
        }

    def iter_rows(self):
        """Yield each row as a plain-Python dict, in order."""
        for index in range(self._length):
            yield self.row(index)

    def to_rows(self):
        return list(self.iter_rows())

    def distinct(self, name):
        """Unique values of a column, in first-seen order."""
        seen = {}
        for value in self._columns[name]:
            seen.setdefault(_python_value(value, self._kinds[name]))
        return list(seen)

    # -- filtering -----------------------------------------------------------

    def select(self, mask):
        """Subset rows by boolean mask (array or per-row-dict callable)."""
        if callable(mask):
            mask = np.fromiter(
                (bool(mask(row)) for row in self.iter_rows()),
                dtype=bool, count=self._length,
            )
        else:
            mask = np.asarray(mask, dtype=bool)
            if len(mask) != self._length:
                raise ValueError("mask length does not match frame")
        columns = {
            name: array[mask] for name, array in self._columns.items()
        }
        return ResultFrame(columns, self.schema)

    def where(self, **equals):
        """Subset rows where every named column equals the given value."""
        mask = np.ones(self._length, dtype=bool)
        for name, value in equals.items():
            column = self._columns[name]
            if self._kinds[name] in ("str", "json"):
                # compare object cells in Python: numpy coerces the
                # scalar to a U dtype, which mis-compares e.g. strings
                # containing NUL characters
                mask &= np.fromiter(
                    (cell == value for cell in column),
                    dtype=bool, count=self._length,
                )
            else:
                mask &= column == value
        return self.select(mask)

    # -- aggregation ---------------------------------------------------------

    def group_by(self, keys, aggregates):
        """Group rows by key columns and aggregate value columns.

        Parameters
        ----------
        keys:
            Column name or list of names to group on; groups keep
            first-seen order (deterministic for canonically ordered
            results).
        aggregates:
            ``{output_name: (column, stat)}`` with ``stat`` one of
            ``mean|sum|min|max|count|first|p50|p95|p99`` (percentiles
            use linear interpolation, as ``np.percentile``).

        Returns another :class:`ResultFrame` (one row per group).
        """
        if isinstance(keys, str):
            keys = [keys]
        keys = list(keys)
        for _, (column, stat) in sorted(aggregates.items()):
            if stat not in STATS:
                raise ValueError(
                    f"unknown stat {stat!r}; choose from {STATS}"
                )
            self._columns[column]   # raise KeyError early on bad names
        groups = {}
        for index in range(self._length):
            key = tuple(
                _python_value(self._columns[name][index], self._kinds[name])
                for name in keys
            )
            groups.setdefault(key, []).append(index)

        out_schema = [Column(name, self._kinds[name]) for name in keys]
        out_columns = {
            name: [key[position] for key in groups]
            for position, name in enumerate(keys)
        }
        for out_name, (column, stat) in aggregates.items():
            kind = "int" if stat == "count" else (
                self._kinds[column] if stat == "first" else "float"
            )
            out_schema.append(Column(out_name, kind))
            values = []
            for indices in groups.values():
                cells = self._columns[column][indices]
                if stat == "count":
                    values.append(len(indices))
                elif stat == "first":
                    values.append(cells[0])
                elif stat == "mean":
                    values.append(float(np.asarray(cells, dtype=float).mean()))
                elif stat == "sum":
                    values.append(float(np.asarray(cells, dtype=float).sum()))
                elif stat == "min":
                    values.append(float(np.asarray(cells, dtype=float).min()))
                elif stat in _PERCENTILES:
                    values.append(float(np.percentile(
                        np.asarray(cells, dtype=float), _PERCENTILES[stat]
                    )))
                else:
                    values.append(float(np.asarray(cells, dtype=float).max()))
            out_columns[out_name] = values
        return ResultFrame(
            {name: _coerce(values, dict(
                (c.name, c.kind) for c in out_schema)[name])
             for name, values in out_columns.items()},
            tuple(out_schema),
        )

    # -- derivation ----------------------------------------------------------

    def with_column(self, name, kind, values):
        """A new frame with one column appended."""
        if name in self._columns:
            raise ValueError(f"column {name!r} already exists")
        columns = dict(self._columns)
        columns[name] = _coerce(list(values), kind)
        return ResultFrame(columns, self.schema + (Column(name, kind),))

    # -- serialisation -------------------------------------------------------

    def to_dict(self):
        """Canonical JSON-serialisable document (lossless)."""
        return {
            "schema": [[c.name, c.kind] for c in self.schema],
            "columns": {
                column.name: [
                    _python_value(value, column.kind)
                    for value in self._columns[column.name]
                ]
                for column in self.schema
            },
        }

    @classmethod
    def from_dict(cls, payload):
        frame_schema = schema(*[
            (name, kind) for name, kind in payload["schema"]
        ])
        columns = {
            column.name: _coerce(
                payload["columns"][column.name], column.kind
            )
            for column in frame_schema
        }
        return cls(columns, frame_schema)

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def to_csv(self, path=None, columns=None):
        """CSV text of the flat columns (``json`` columns are skipped
        unless named explicitly); optionally written to ``path``."""
        if columns is None:
            columns = [
                column.name for column in self.schema
                if column.kind != "json"
            ]
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(columns)
        for row in self.iter_rows():
            writer.writerow([row[name] for name in columns])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def to_structured(self):
        """The flat columns as one structured NumPy array (strings become
        fixed-width unicode; ``json`` columns are skipped)."""
        fields = []
        for column in self.schema:
            if column.kind == "json":
                continue
            if column.kind == "str":
                width = max(
                    [len(str(v)) for v in self._columns[column.name]],
                    default=1,
                )
                fields.append((column.name, f"U{max(width, 1)}"))
            else:
                fields.append((column.name, _DTYPES[column.kind]))
        array = np.empty(self._length, dtype=fields)
        for name, _ in fields:
            array[name] = self._columns[name]
        return array

    # -- comparison ----------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, ResultFrame):
            return NotImplemented
        if self.schema != other.schema or len(self) != len(other):
            return False
        for column in self.schema:
            ours = self._columns[column.name]
            theirs = other._columns[column.name]
            if column.kind == "float":
                if not np.array_equal(ours, theirs, equal_nan=True):
                    return False
            elif column.kind in ("str", "json"):
                if list(ours) != list(theirs):
                    return False
            elif not np.array_equal(ours, theirs):
                return False
        return True

    def __repr__(self):
        return (
            f"ResultFrame({self._length} rows x "
            f"{len(self.schema)} columns: "
            f"{', '.join(self.column_names)})"
        )
