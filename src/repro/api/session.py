"""The Session facade: one object owns the pipeline's cross-cutting
context.

Every workflow of the reproduction — characterise a design point, compile
traces, evaluate clock policies, check safety, sweep scenario grids,
adapt under drift, scan over-scaling — used to re-thread ``design``,
``store``, ``jobs``, ``max_cycles`` and engine selection by hand through
five disjoint entry points.  A :class:`Session` owns that context once:

    >>> from repro.api import Session
    >>> session = Session(voltage=0.70, store=".repro-store", jobs=4)
    >>> frame = session.evaluate(["crc32", "matmult"],
    ...                          policies=["instruction", "genie"])
    >>> frame.group_by("config", {"mhz": ("effective_frequency_mhz",
    ...                                   "mean")}).to_rows()

Methods return a columnar :class:`~repro.api.frame.ResultFrame` (see its
module docstring); ``characterize`` returns the merged
:class:`~repro.flow.characterize.CharacterizationResult` since a LUT is
not tabular.  The legacy free functions (``evaluate_program``,
``evaluate_batch``, ``characterize``, ``SweepRunner.run``,
``evaluate_overscaling``, ``evaluate_with_drift``) remain as bit-identical
shims over this facade.
"""

from contextlib import contextmanager

from repro.api.frame import (
    ADAPT_SCHEMA,
    EVALUATION_SCHEMA,
    OVERSCALING_SCHEMA,
    TRAINING_SCHEMA,
    ResultFrame,
)
from repro.obs import trace as obs_trace
from repro.obs.trace import span as obs_span
from repro.dta.extraction import DEFAULT_MIN_OCCURRENCES
from repro.flow.evaluate import DEFAULT_MAX_CYCLES, SweepConfig
from repro.sim.spec import DEFAULT_SPEC, get_pipeline_spec
from repro.timing.profiles import DesignVariant

#: Valid evaluation engines: ``vector`` is the compiled-trace array
#: pipeline, ``lockstep`` the same pipeline with the architectural ISS
#: pass of uncached programs batched across the whole program list
#: (:mod:`repro.sim.lockstep`; bit-identical results), and ``scalar``
#: the retained per-record reference.
ENGINES = ("vector", "lockstep", "scalar")

#: Default over-scaling factor ladder (paper Sec. IV-A).
DEFAULT_OVERSCALE_FACTORS = (1.0, 0.97, 0.94, 0.91, 0.88, 0.85)

#: Session engine → characterisation engine name.
_CHAR_ENGINES = {"vector": "array", "lockstep": "array", "scalar": "record"}


def design_point_label(variant, voltage, pipeline_spec=None):
    """Display label of an operating point (matches
    :attr:`repro.lab.scenario.DesignPoint.label`).  ``pipeline_spec``
    (a preset name) is appended when non-default; the default spec is
    omitted so pre-spec labels are unchanged."""
    label = f"{variant}@{voltage:.2f}V"
    if pipeline_spec and pipeline_spec != DEFAULT_SPEC.name:
        label += f"/{pipeline_spec}"
    return label


def evaluation_row(result, *, variant, voltage, config_label, policy,
                   generator, margin_percent, pipeline_spec=None):
    """One :data:`EVALUATION_SCHEMA` row from an ``EvaluationResult``.

    Field-for-field the sweep runner's canonical JSON row
    (:func:`repro.lab.runner.result_to_dict`), so Session evaluations and
    orchestrated sweep documents share one layout.  ``pipeline_spec``
    distinguishes the ``design_point`` cell of non-default
    microarchitectures so spec axes never merge in group-bys.
    """
    return {
        "design_point": design_point_label(variant, voltage,
                                           pipeline_spec),
        "variant": variant,
        "voltage": voltage,
        "config": config_label,
        "policy": policy,
        "generator": generator,
        "margin_percent": margin_percent,
        "program": result.program_name,
        "num_cycles": result.num_cycles,
        "num_retired": result.num_retired,
        "total_time_ps": result.total_time_ps,
        "static_period_ps": result.static_period_ps,
        "min_period_ps": result.min_period_ps,
        "max_period_ps": result.max_period_ps,
        "switch_rate": result.switch_rate,
        "average_period_ps": result.average_period_ps,
        "effective_frequency_mhz": result.effective_frequency_mhz,
        "speedup_percent": result.speedup_percent,
        "num_violations": len(result.violations),
        "violations": [
            [v.cycle, v.stage.name, v.applied_period_ps,
             v.excited_delay_ps, v.driver_class]
            for v in result.violations
        ],
    }


def result_from_row(row):
    """Rehydrate an ``EvaluationResult`` from an evaluation row.

    The inverse of :func:`evaluation_row` up to the policy label (rows
    carry the config-spec policy name).  Lossless for every numeric field
    and the violation detail.
    """
    from repro.flow.evaluate import EvaluationResult, TimingViolation
    from repro.sim.trace import Stage

    return EvaluationResult(
        program_name=row["program"],
        policy_name=row["policy"],
        num_cycles=row["num_cycles"],
        num_retired=row["num_retired"],
        total_time_ps=row["total_time_ps"],
        static_period_ps=row["static_period_ps"],
        min_period_ps=row["min_period_ps"],
        max_period_ps=row["max_period_ps"],
        switch_rate=row["switch_rate"],
        violations=[
            TimingViolation(
                cycle=cycle,
                stage=Stage[stage],
                applied_period_ps=applied,
                excited_delay_ps=excited,
                driver_class=driver,
            )
            for cycle, stage, applied, excited, driver in row["violations"]
        ],
    )


def summarize_row(row):
    """One-line summary of an evaluation row (CLI output)."""
    return result_from_row(row).summary()


class Session:
    """One facade over the whole pipeline.

    Parameters
    ----------
    variant / voltage:
        The operating point (ignored when ``design`` is given).
    design:
        Optional pre-built :class:`~repro.timing.design.ProcessorDesign`.
    lut / characterization:
        Optional pre-computed delay LUT or full characterisation to reuse
        (characterisation is the expensive step).
    store:
        Optional :class:`~repro.lab.store.ArtifactStore` (or path);
        compiled traces, LUTs and sweep results are cached through it.
    engine:
        ``"vector"`` (compiled-trace arrays, default) or ``"scalar"``
        (the retained per-record reference) — bit-identical results.
    jobs:
        Worker processes for sharded characterisation and grid sweeps.
    max_cycles:
        Pipeline-simulation cycle budget.
    min_occurrences:
        Characterisation extraction threshold.
    store_budget_bytes:
        Optional size budget; sweeps auto-``gc`` the store after merging
        so long campaigns self-limit.
    seed:
        Root seed of the synthetic netlist (``design`` construction).
    pipeline_spec:
        Microarchitecture of the simulated pipeline — a
        :class:`~repro.sim.spec.PipelineSpec`, a registered preset name
        (``"shallow5"``, ``"deep7"``, ...), or ``None`` for the default
        six-stage machine.  Non-default specs key their own compiled
        traces, LUTs and store artifacts, and require an array engine
        (``vector``/``lockstep``).  Ignored when ``design`` is given
        (the design carries its spec).
    telemetry:
        ``True`` to collect spans on a fresh
        :class:`~repro.obs.trace.Tracer`, or a ``Tracer`` to share one
        across sessions.  While a session method runs, the tracer is the
        process-wide ambient tracer, so every layer (evaluate, compile,
        ISS, store) records onto the session's timeline — including
        spans shipped back from sweep/characterisation worker processes.
        Telemetry never changes results, fingerprints or stored bytes;
        read it back with :meth:`telemetry_frame` or export via
        :mod:`repro.obs.export`.  Default off (near-zero overhead).
    """

    def __init__(self, variant=DesignVariant.CRITICAL_RANGE.value,
                 voltage=0.70, *, design=None, lut=None,
                 characterization=None, store=None, engine="vector",
                 jobs=1, max_cycles=DEFAULT_MAX_CYCLES,
                 min_occurrences=DEFAULT_MIN_OCCURRENCES,
                 store_budget_bytes=None, seed=None, telemetry=None,
                 pipeline_spec=None):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        if design is not None:
            variant = design.variant.value
            voltage = design.library.voltage
            pipeline_spec = design.pipeline_spec
        elif isinstance(variant, DesignVariant):
            variant = variant.value
        pipeline_spec = get_pipeline_spec(pipeline_spec)
        if engine == "scalar" and not pipeline_spec.is_default:
            raise ValueError(
                "the scalar engine's record path (per-record policies, "
                "event-log characterisation) assumes the default pipeline "
                f"layout; spec {pipeline_spec.name!r} needs the vector or "
                "lockstep engine"
            )
        self.variant = variant
        self.voltage = float(voltage)
        self.pipeline_spec = pipeline_spec
        self.engine = engine
        self.jobs = max(1, int(jobs))
        self.max_cycles = int(max_cycles)
        self.min_occurrences = min_occurrences
        self.store_budget_bytes = store_budget_bytes
        self.seed = seed
        self._design = design
        self._lut = lut
        self._characterization = characterization
        if store is not None:
            from repro.lab.store import ArtifactStore

            if not isinstance(store, ArtifactStore):
                store = ArtifactStore(store)
        self.store = store
        if telemetry is True:
            telemetry = obs_trace.Tracer(label="session")
        elif telemetry is False:
            telemetry = None
        self.telemetry = telemetry

    @classmethod
    def for_design(cls, design, **kwargs):
        """A session bound to an existing design object."""
        return cls(design=design, **kwargs)

    # -- owned context -------------------------------------------------------

    @property
    def design(self):
        """The processor design at this session's operating point."""
        if self._design is None:
            from repro.timing.design import build_design

            self._design = build_design(
                DesignVariant(self.variant), voltage=self.voltage,
                seed=self.seed, pipeline_spec=self.pipeline_spec,
            )
        return self._design

    @property
    def design_point(self):
        return design_point_label(self.variant, self.voltage,
                                  self.pipeline_spec.name)

    @property
    def static_period_ps(self):
        return self.design.static_period_ps

    @property
    def static_frequency_mhz(self):
        from repro.utils.units import ps_to_mhz

        return ps_to_mhz(self.design.static_period_ps)

    @property
    def lut(self):
        """The characterised delay LUT (characterising on first use)."""
        return self.characterization.lut

    @property
    def characterization(self):
        """The session's cached characterisation (computed on first use)."""
        if self._characterization is None:
            if self._lut is not None:
                from repro.flow.characterize import CharacterizationResult

                self._characterization = CharacterizationResult(
                    design=self.design, lut=self._lut
                )
            else:
                self._characterization = self.characterize()
        return self._characterization

    @property
    def dca(self):
        """A :class:`~repro.core.dca.DynamicClockAdjustment` view of the
        session (policy/generator factories bound to the LUT)."""
        from repro.core import DcaConfig, DynamicClockAdjustment

        return DynamicClockAdjustment(
            config=DcaConfig(
                variant=self.design.variant, voltage=self.voltage,
                min_occurrences=self.min_occurrences,
            ),
            characterization=self.characterization,
        )

    @contextmanager
    def _scope(self, name, **attrs):
        """Install the session tracer (if any) for the duration of one
        workflow call and record it as a ``session.*`` span."""
        if self.telemetry is None:
            with obs_span(name, **attrs):
                yield
            return
        previous = obs_trace.set_tracer(self.telemetry)
        try:
            with obs_span(name, **attrs):
                yield
        finally:
            obs_trace.set_tracer(previous)

    def telemetry_frame(self):
        """The collected spans as a :data:`TELEMETRY_SCHEMA` ResultFrame
        (requires a session constructed with ``telemetry=``)."""
        if self.telemetry is None:
            raise ValueError(
                "session has no telemetry; construct with telemetry=True"
            )
        from repro.obs.export import telemetry_frame as _telemetry_frame

        return _telemetry_frame(self.telemetry.snapshot())

    @contextmanager
    def _attached_store(self):
        """Attach the session store to the compiled-trace cache for the
        duration of one call (ambient store left alone when unset)."""
        if self.store is None:
            yield
            return
        from repro.dta.compiled import set_trace_store

        previous = set_trace_store(self.store)
        try:
            yield
        finally:
            set_trace_store(previous)

    def _resolve_programs(self, programs):
        from repro.workloads import resolve_program

        if programs is None:
            from repro.workloads.suite import benchmark_suite

            return benchmark_suite()
        single = not isinstance(programs, (list, tuple))
        if single:
            programs = [programs]
        return [
            resolve_program(spec) if isinstance(spec, str) else spec
            for spec in programs
        ]

    # -- characterisation ----------------------------------------------------

    def characterize(self, programs=None, *, min_occurrences=None,
                     sim_period_ps=None, keep_runs=False, engine=None,
                     via_store=None):
        """Characterise the session's design point.

        Returns the merged
        :class:`~repro.flow.characterize.CharacterizationResult` and
        caches it on the session when called with default arguments.

        ``via_store`` controls the merged-LUT store fast path: ``None``
        (auto) uses :meth:`ArtifactStore.get_lut` for the default suite,
        ``False`` always runs the characterisation flow (still reading
        per-program batches through the store's ``charlut`` cache).
        """
        from repro.flow.characterize import (
            CharacterizationResult,
            _characterize_impl,
        )

        if min_occurrences is None:
            min_occurrences = self.min_occurrences
        default_call = (
            programs is None
            and min_occurrences == self.min_occurrences
            and sim_period_ps is None
            and engine in (None, _CHAR_ENGINES[self.engine])
        )
        if (default_call and not keep_runs
                and self._characterization is None
                and self._lut is not None):
            self._characterization = CharacterizationResult(
                design=self.design, lut=self._lut
            )
        if (default_call and self._characterization is not None
                and (not keep_runs or self._characterization.runs)):
            return self._characterization
        if via_store is None:
            via_store = (
                self.store is not None and programs is None
                and sim_period_ps is None and not keep_runs
            )
        with self._scope("session.characterize",
                         design_point=self.design_point):
            if via_store:
                lut = self.store.get_lut(
                    self.design, min_occurrences=min_occurrences,
                    jobs=self.jobs,
                )
                result = CharacterizationResult(design=self.design,
                                                lut=lut)
            else:
                result = _characterize_impl(
                    self.design, programs=programs,
                    min_occurrences=min_occurrences,
                    sim_period_ps=sim_period_ps, keep_runs=keep_runs,
                    engine=engine or _CHAR_ENGINES[self.engine],
                    jobs=self.jobs, store=self.store,
                )
        if default_call:
            self._characterization = result
        return result

    # -- evaluation ----------------------------------------------------------

    def _config_specs(self, policies, generators, margins, check_safety):
        from repro.lab.scenario import ConfigSpec

        return [
            ConfigSpec(
                policy=policy, generator=generator, margin_percent=margin,
                check_safety=check_safety,
            )
            for policy in policies
            for generator in generators
            for margin in margins
        ]

    def _materialize(self, specs):
        """ConfigSpecs → concrete SweepConfigs bound to this session."""
        from repro.lab.scenario import ConfigSpec

        dca = None
        configs = []
        for spec in specs:
            if isinstance(spec, SweepConfig):
                configs.append(spec)
            elif isinstance(spec, ConfigSpec):
                if dca is None:
                    dca = self.dca
                configs.append(spec.make(dca))
            else:
                raise TypeError(
                    f"config must be SweepConfig or ConfigSpec, "
                    f"got {type(spec).__name__}"
                )
        return configs

    def evaluate_results(self, programs, configs):
        """Evaluation as the ``[config][program]`` grid of
        ``EvaluationResult`` objects — the object-shaped view of
        :meth:`evaluate` for consumers that introspect violations or
        result properties directly.  The legacy shim layer also routes
        through here.
        """
        from repro.flow import evaluate as _evaluate

        programs = list(programs)
        configs = list(configs)
        with self._scope("session.evaluate_results",
                         programs=len(programs),
                         configs=len(configs)), \
                self._attached_store():
            if self.engine == "scalar":
                return [
                    [
                        _evaluate.evaluate_program_scalar(
                            program, self.design, config.make_policy(),
                            generator=config.make_generator(),
                            margin_percent=config.margin_percent,
                            check_safety=config.check_safety,
                            max_cycles=self.max_cycles,
                        )
                        for program in programs
                    ]
                    for config in configs
                ]
            return _evaluate._evaluate_batch(
                programs, self.design, configs, max_cycles=self.max_cycles,
                engine=self.engine,
            )

    def evaluate(self, programs=None, configs=None, *, policies=None,
                 generators=None, margins=None, check_safety=True):
        """Evaluate programs under clock configurations → ResultFrame.

        Parameters
        ----------
        programs:
            Program objects, kernel names/assembly paths, or ``None`` for
            the Fig. 8 benchmark suite.
        configs:
            Explicit configuration rows
            (:class:`~repro.lab.scenario.ConfigSpec` or
            :class:`~repro.flow.evaluate.SweepConfig`); mutually
            exclusive with the axis keywords.
        policies / generators / margins:
            Axis shorthand; the cross product (policy-major) becomes the
            configuration rows.  Defaults: ``["instruction"]`` ×
            ``["ideal"]`` × ``[0.0]``.
        check_safety:
            Replay ground-truth delays and record violations (axis mode
            only; explicit configs carry their own flag).

        Returns a :class:`ResultFrame` with one row per (config, program),
        config-major in input order.
        """
        programs = self._resolve_programs(programs)
        if configs is not None:
            if policies or generators or margins:
                raise ValueError(
                    "pass either configs or policies/generators/margins, "
                    "not both"
                )
            specs = list(configs)
        else:
            specs = self._config_specs(
                list(policies) if policies is not None
                else ["instruction"],
                list(generators) if generators is not None else ["ideal"],
                [float(m) for m in (margins if margins is not None
                                    else [0.0])],
                check_safety,
            )
        concrete = self._materialize(specs)
        grid = self.evaluate_results(programs, concrete)
        rows = []
        for spec, config, row in zip(specs, concrete, grid):
            policy = getattr(spec, "policy", None)
            generator = self._generator_name(spec, config)
            for result in row:
                rows.append(evaluation_row(
                    result,
                    variant=self.variant,
                    voltage=self.voltage,
                    config_label=config.label or self._fallback_label(
                        result.policy_name, generator,
                        config.margin_percent,
                    ),
                    policy=(policy if isinstance(policy, str)
                            else result.policy_name),
                    generator=generator,
                    margin_percent=config.margin_percent,
                    pipeline_spec=self.pipeline_spec.name,
                ))
        return ResultFrame.from_rows(rows, EVALUATION_SCHEMA)

    @staticmethod
    def _fallback_label(policy_name, generator_name, margin_percent):
        """Distinct label for unlabelled SweepConfigs: two configs that
        differ in any axis must never share a ``config`` cell (group-by
        over the column would silently merge them)."""
        label = f"{policy_name}/{generator_name}"
        if margin_percent:
            label += f"/margin={margin_percent:g}%"
        return label

    @staticmethod
    def _generator_name(spec, config):
        generator = getattr(spec, "generator", None)
        if isinstance(generator, str):
            return generator
        generator = config.make_generator()
        if generator is None:
            return "ideal"
        return getattr(generator, "name", type(generator).__name__)

    # -- orchestrated sweeps -------------------------------------------------

    def sweep(self, grid, *, resume=False, progress=None, runner=None,
              manifest_path=None, on_unit=None):
        """Run a scenario grid through the parallel sweep runner.

        The runner inherits the session's store, worker count and store
        budget; the merged outcome is a frame-backed
        :class:`~repro.lab.runner.SweepRunResult` (``.frame`` holds the
        :class:`ResultFrame`, serialisation is unchanged).

        ``on_unit(done, total)`` is called as units complete (once up
        front with the resumed count) — the hook behind
        ``repro sweep --progress``.

        The orchestrated runner evaluates through the compiled-trace
        array engines only (``vector`` or the batched ``lockstep``); a
        ``scalar`` session refuses to sweep rather than return vector
        results labelled as the reference.
        """
        from repro.lab.runner import SweepRunner
        from repro.lab.scenario import ScenarioGrid

        if self.engine == "scalar":
            raise ValueError(
                "orchestrated sweeps run on the vector/lockstep engines "
                "only; use Session.evaluate for the scalar reference"
            )

        if not isinstance(grid, ScenarioGrid):
            grid = ScenarioGrid.from_file(grid)
        if runner is None:
            runner = SweepRunner(
                grid, store=self.store, jobs=self.jobs,
                manifest_path=manifest_path,
                store_budget_bytes=self.store_budget_bytes,
                engine=self.engine,
            )
        with self._scope("session.sweep", grid=grid.name,
                         jobs=self.jobs):
            return runner._execute(resume=resume, progress=progress,
                                   on_unit=on_unit)

    def sweep_frame(self, grid, *, cache_name=None, resume=False,
                    on_unit=None):
        """Sweep a grid with a store-level result cache → ``(frame,
        cached)``.

        Looks the grid up in the session store's frame cache first
        (``cache_name`` defaults to ``"sweep-frame:<fingerprint>"``, so
        any byte-identical grid — same axes, same learned-model bytes —
        hits the same entry).  On a hit the stored
        :class:`ResultFrame` is returned with zero simulation; on a
        miss the grid is swept via :meth:`sweep` and the frame saved
        back.  This is the unit of work behind the ``repro.serve``
        sweep service, where the cache dedups across tenants and across
        server processes sharing one store root.
        """
        from repro.lab.scenario import ScenarioGrid

        if not isinstance(grid, ScenarioGrid):
            grid = ScenarioGrid.from_file(grid)
        if self.store is not None:
            if cache_name is None:
                cache_name = f"sweep-frame:{grid.fingerprint()}"
            frame = self.store.load_frame(cache_name)
            if frame is not None:
                if on_unit is not None:
                    total = len(frame)
                    on_unit(total, total)
                return frame, True
        result = self.sweep(grid, resume=resume, on_unit=on_unit)
        frame = result.frame
        if self.store is not None:
            self.store.save_frame(cache_name, frame)
        return frame, False

    def training_table(self, grid, *, resume=False, progress=None,
                       on_unit=None):
        """Policy-training data generator: one flat table over the grid.

        Sweeps margins × voltages × variants × policies × workloads and
        returns the evaluation frame extended with flat learning targets
        (:data:`TRAINING_SCHEMA`): ``safe`` (1 when violation-free),
        ``ipc`` (retired per cycle) and ``normalized_period``
        (average applied period over the static period — the
        frequency-over-scaling gain a learned DFS policy predicts).

        Safety checking is forced on: the ``safe`` label needs the
        ground-truth violation replay, so a grid with
        ``check_safety=False`` is transparently re-run with it enabled.

        :func:`repro.ml.train.train_policy` is the primary consumer:
        it sweeps the grid through this method (baselines + store
        warming) and then fits a deployable
        :class:`~repro.clocking.policies.LearnedPolicy` on the per-cycle
        genie targets of the same grid.
        """
        from repro.lab.scenario import ScenarioGrid

        if not isinstance(grid, ScenarioGrid):
            grid = ScenarioGrid.from_file(grid)
        if not grid.check_safety:
            grid = ScenarioGrid.from_dict(
                {**grid.to_dict(), "check_safety": True}
            )
        result = self.sweep(grid, resume=resume, progress=progress,
                            on_unit=on_unit)
        frame = result.frame
        num_cycles = frame["num_cycles"]
        safe = (frame["num_violations"] == 0).astype(int)
        ipc = [
            (retired / cycles if cycles else float("nan"))
            for retired, cycles in zip(frame["num_retired"], num_cycles)
        ]
        normalized = [
            (average / static if static else float("nan"))
            for average, static in zip(
                frame["average_period_ps"], frame["static_period_ps"]
            )
        ]
        frame = frame.with_column("safe", "int", safe)
        frame = frame.with_column("ipc", "float", ipc)
        frame = frame.with_column("normalized_period", "float", normalized)
        assert frame.schema == TRAINING_SCHEMA
        return frame

    # -- drift adaptation ----------------------------------------------------

    def adapt_results(self, programs, environment, schemes=None,
                      update_interval=150, tracking_margin=0.025):
        """Drift adaptation as ``AdaptiveEvaluationResult`` objects, one
        per (program, scheme) — the object-shaped view of
        :meth:`adapt`."""
        from repro.adapt import online as _online

        if schemes is None:
            schemes = _online.SCHEMES
        programs = list(programs)
        schemes = list(schemes)
        results = []
        with self._scope("session.adapt", programs=len(programs),
                         schemes=len(schemes)), \
                self._attached_store():
            for program in programs:
                for scheme in schemes:
                    results.append(_online._evaluate_with_drift_impl(
                        program, self.design, self.lut, environment,
                        scheme=scheme, update_interval=update_interval,
                        tracking_margin=tracking_margin,
                        max_cycles=self.max_cycles,
                        engine=_CHAR_ENGINES[self.engine],
                    ))
        return results

    def adapt(self, programs, environment, *, schemes=None,
              update_interval=150, tracking_margin=0.025):
        """Evaluate programs under environmental drift → ResultFrame.

        One row per (program, scheme); ``schemes`` defaults to all three
        (``fixed-none``, ``fixed-guard``, ``online``).
        """
        from repro.adapt.online import SCHEMES

        programs = self._resolve_programs(programs)
        schemes = list(schemes or SCHEMES)
        results = self.adapt_results(
            programs, environment, schemes, update_interval,
            tracking_margin,
        )
        rows = [
            {
                "program": result.program_name,
                "scheme": result.scheme,
                "num_cycles": result.num_cycles,
                "total_time_ps": result.total_time_ps,
                "violations": result.violations,
                "lut_updates": result.lut_updates,
                "max_drift_seen": result.max_drift_seen,
                "average_period_ps": result.average_period_ps,
                "effective_frequency_mhz": result.effective_frequency_mhz,
            }
            for result in results
        ]
        return ResultFrame.from_rows(rows, ADAPT_SCHEMA)

    # -- over-scaling --------------------------------------------------------

    def overscaling_reports(self, program, factors=None, max_cycles=None):
        """Over-scaling scan as ``OverscalingReport`` objects, one per
        factor — the object-shaped view of :meth:`overscaling`."""
        from repro.approx import violations as _violations

        if factors is None:
            factors = DEFAULT_OVERSCALE_FACTORS
        factors = list(factors)
        if max_cycles is None:
            max_cycles = self.max_cycles
        with self._scope("session.overscaling", program=program.name,
                         factors=len(factors)), \
                self._attached_store():
            if self.engine == "scalar":
                return [
                    _violations.evaluate_overscaling_scalar(
                        program, self.design, self.lut, factor,
                        max_cycles=max_cycles,
                    )
                    for factor in factors
                ]
            return [
                _violations._evaluate_overscaling_impl(
                    program, self.design, self.lut, factor,
                    max_cycles=max_cycles,
                )
                for factor in factors
            ]

    def overscaling(self, programs, factors=None):
        """Over-scaling scan: clock beyond the safe bound → ResultFrame.

        One row per (program, factor); ``factors`` defaults to the
        paper's ladder (:data:`DEFAULT_OVERSCALE_FACTORS`).
        """
        programs = self._resolve_programs(programs)
        factors = list(factors or DEFAULT_OVERSCALE_FACTORS)
        rows = []
        for program in programs:
            for report in self.overscaling_reports(program, factors):
                rows.append({
                    "program": report.program_name,
                    "overscale_factor": report.overscale_factor,
                    "num_cycles": report.num_cycles,
                    "total_time_ps": report.total_time_ps,
                    "violation_cycles": report.violation_cycles,
                    "violation_rate": report.violation_rate,
                    "num_approx_results": len(report.approx_results),
                    "mean_corrupted_bits": report.mean_corrupted_bits,
                    "mean_relative_error": report.mean_relative_error,
                    "violations_by_stage": dict(report.violations_by_stage),
                    "violations_by_class": dict(report.violations_by_class),
                })
        return ResultFrame.from_rows(rows, OVERSCALING_SCHEMA)

    # -- store maintenance ---------------------------------------------------

    def gc(self, max_bytes=None, dry_run=False):
        """Evict least-recently-used store artifacts down to a budget
        (defaults to the session's ``store_budget_bytes``)."""
        if self.store is None:
            raise ValueError("session has no artifact store")
        if max_bytes is None:
            max_bytes = self.store_budget_bytes
        if max_bytes is None:
            raise ValueError(
                "no size budget: pass max_bytes or set store_budget_bytes"
            )
        return self.store.gc(max_bytes=max_bytes, dry_run=dry_run)

    def __repr__(self):
        return (
            f"Session({self.design_point}, engine={self.engine!r}, "
            f"jobs={self.jobs}, store="
            f"{str(self.store.root) if self.store else None!r})"
        )
