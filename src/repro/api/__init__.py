"""repro.api — the public programmatic surface of the reproduction.

One facade, one result type
===========================

The paper's flow is one pipeline — characterise a design point, compile
traces, evaluate clock policies, check safety — and this package exposes
it through exactly two objects:

- :class:`Session` owns the cross-cutting context once (operating point,
  artifact store, engine selection, worker count, cycle budget, store gc
  budget) and offers the whole pipeline as methods;
- :class:`ResultFrame` is the columnar result every workflow returns:
  structured NumPy columns under a stable schema, with ``iter_rows()``,
  ``to_json()``/``to_csv()``, filtering, group-by aggregation, and a
  lossless round-trip through the artifact store.

Quickstart
==========

    from repro.api import Session

    session = Session(voltage=0.70, store=".repro-store", jobs=4)

    # characterise once (cached in the store), evaluate the suite
    frame = session.evaluate(
        ["crc32", "matmult", "fib"],
        policies=["instruction", "genie"],
        margins=[0.0, 5.0],
    )
    print(frame.to_csv())

    # aggregate: average speedup per configuration
    summary = frame.group_by(
        "config", {"speedup": ("speedup_percent", "mean"),
                   "violations": ("num_violations", "sum")}
    )
    for row in summary.iter_rows():
        print(row)

    # orchestrated grid sweep (parallel, resumable, store-backed)
    result = session.sweep("grids/margins.json")
    result.frame.to_csv("sweep.csv")

    # one flat table for policy training: margins x voltages x policies
    table = session.training_table("grids/training.json")

Sessions are cheap to construct; the expensive artifacts
(characterised LUTs, compiled traces) live in the artifact store and are
shared across sessions, processes and CLI runs.

Stability
=========

``repro.api.__all__`` is the public-API contract — additions are fine,
renames/removals are breaking and guarded by
``tests/test_api_surface.py``.  The legacy free functions
(``repro.flow.evaluate.*``, ``repro.flow.characterize.characterize``,
``SweepRunner.run``, ``repro.approx.violations.*``,
``repro.adapt.online.*``) are bit-identical shims over :class:`Session`
and remain supported for one deprecation cycle.
"""

from repro.api.frame import (
    ADAPT_SCHEMA,
    EVALUATION_SCHEMA,
    OVERSCALING_SCHEMA,
    TELEMETRY_SCHEMA,
    TRAINING_SCHEMA,
    Column,
    ResultFrame,
)
from repro.api.session import (
    DEFAULT_OVERSCALE_FACTORS,
    ENGINES,
    Session,
    design_point_label,
    evaluation_row,
    result_from_row,
    summarize_row,
)

__all__ = [
    "Session",
    "ResultFrame",
    "Column",
    "EVALUATION_SCHEMA",
    "ADAPT_SCHEMA",
    "OVERSCALING_SCHEMA",
    "TRAINING_SCHEMA",
    "TELEMETRY_SCHEMA",
    "ENGINES",
    "DEFAULT_OVERSCALE_FACTORS",
    "design_point_label",
    "evaluation_row",
    "result_from_row",
    "summarize_row",
]
