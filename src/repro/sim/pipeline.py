"""Cycle-accurate in-order pipeline (customised mor1kx, paper Fig. 4).

The machine's *shape* is a parameter: a
:class:`~repro.sim.spec.PipelineSpec` supplies the stage columns (each
mapped onto one of the six canonical path groups), the forwarding and
load-use policy, and the mul/div EX latencies.  The default spec is the
paper's documented six-stage core:

- Stages: ``ADR`` (next-pc computation, instruction-memory address
  presentation), ``FE`` (instruction SRAM read), ``DC`` (decode + register
  read), ``EX`` (ALU / shifter / single-cycle multiplier, data-memory
  request issue, control-transfer resolution), ``CTRL`` (data-memory
  response, store commit), ``WB`` (register-file writeback).
- Tightly-coupled single-cycle SRAMs for instructions and data.
- Full forwarding: results of ALU-class instructions are visible to the
  immediately following instruction (modelled by committing register writes
  at the end of the producer's EX cycle — consumers read at EX entry).
- Loads produce their value at the end of CTRL; a dependent instruction
  directly after a load stalls for exactly one cycle (load-use interlock).
- Control transfers resolve in EX.  OR1K delay-slot semantics: the next
  sequential instruction always executes.  On a taken transfer the redirect
  reaches the instruction-memory address register within the same cycle, so
  the wrong-path words behind the delay slot (one per front stage between
  ADR and the delay slot — exactly one in the default machine) are
  squashed.
- ``l.div``/``l.divu`` occupy EX for ``div_latency`` cycles (serial
  divider), stalling the front end; specs may give multiplies a
  multi-cycle EX residency the same way.
- Halt convention: ``l.nop 0x1`` terminates the run when it retires.

Non-default hazard policies (forwarding off, multi-cycle load-use
penalties) are documented on :mod:`repro.sim.spec`; this scalar engine is
the reference implementation for every spec.
"""

from dataclasses import dataclass

from repro.isa.encoding import EncodingError, decode
from repro.isa.opcodes import InstructionKind
from repro.isa.registers import REG_LINK
from repro.isa.semantics import compute, load_extract
from repro.sim.iss import HALT_NOP_CODE, SimulationError
from repro.sim.memory import Memory
from repro.sim.spec import get_pipeline_spec
from repro.sim.state import ArchState
from repro.sim.trace import (
    BUBBLE_VIEW,
    CycleRecord,
    PipelineTrace,
    StageView,
)

#: Default serial-divider latency in cycles.
DEFAULT_DIV_LATENCY = 32

#: Hard cap on simulated cycles.
DEFAULT_MAX_CYCLES = 50_000_000


@dataclass
class _Slot:
    """One pipeline-register slot (mutable working state)."""

    instruction: object = None   # Instruction or None for a bubble
    pc: int = None
    seq: int = None
    a: int = None                # EX operand values
    b: int = None
    result: object = None        # ComputeResult, filled in EX
    ex_remaining: int = -1       # -1 -> multi-cycle EX op not started
    held: bool = False

    @property
    def is_bubble(self):
        return self.instruction is None

    def view(self):
        if self.instruction is None:
            return BUBBLE_VIEW
        return StageView(
            mnemonic=self.instruction.mnemonic,
            timing_class=self.instruction.timing_class,
            pc=self.pc,
            seq=self.seq,
            held=self.held,
        )


def _bubble():
    return _Slot()


class PipelineSimulator:
    """Cycle-accurate simulator producing a :class:`PipelineTrace`.

    Parameters
    ----------
    program:
        Assembled :class:`~repro.asm.program.Program`.
    div_latency:
        EX occupancy of serial divides, in cycles (>= 1); defaults to the
        spec's divider latency.
    memory:
        Optional pre-initialised memory (defaults to the program image).
    spec:
        :class:`~repro.sim.spec.PipelineSpec`, preset name, or ``None``
        for the default six-stage machine.
    """

    def __init__(self, program, div_latency=None, memory=None, spec=None):
        spec = get_pipeline_spec(spec)
        if div_latency is None:
            div_latency = spec.div_latency
        if div_latency < 1:
            raise ValueError("div_latency must be at least 1 cycle")
        self.program = program
        self.spec = spec
        self.memory = memory if memory is not None else Memory("mem")
        if memory is None:
            program.load_into(self.memory)
        self.state = ArchState(entry=program.entry)
        self.div_latency = div_latency
        self.halted = False
        self.cycle = 0
        self.trace = PipelineTrace(program_name=program.name)

        self._fetch_pc = program.entry
        self._num_stages = spec.num_stages
        self._ex = spec.ex_index          # EX column == first back boundary
        self._nf = spec.num_front
        self._forwarding = spec.forwarding
        self._load_use_penalty = spec.load_use_penalty
        self._mul_latency = spec.mul_latency
        self._slots = [_bubble() for _ in range(self._num_stages)]
        self._seq = 0
        self._halt_in_flight = False
        self._draining = False        # halt has executed; EX is inert
        self._decode_cache = {}
        self._in_delay_slot = False   # next EX instruction is a delay slot

    # ------------------------------------------------------------------ fetch

    def _decode_at(self, address, word):
        cached = self._decode_cache.get(address)
        if cached is not None:
            return cached
        if address in self.program.instructions:
            instruction = self.program.instructions[address]
        else:
            instruction = decode(word)   # may raise EncodingError
        self._decode_cache[address] = instruction
        return instruction

    def _fetch_slot(self):
        """Create the ADR-stage slot for the current fetch address."""
        address = self._fetch_pc
        if address % 4:
            raise SimulationError(f"misaligned fetch at {address:#010x}")
        word = self.memory.load_word(address)
        slot = _Slot(pc=address, seq=self._seq)
        self._seq += 1
        try:
            slot.instruction = self._decode_at(address, word)
        except EncodingError as err:
            if not self._halt_in_flight:
                raise SimulationError(
                    f"cannot decode fetched word {word:#010x} at "
                    f"{address:#010x}: {err}"
                ) from err
            # Wrong-path fetch beyond the halt: treat as a bubble.
            slot.instruction = None
        else:
            if (
                slot.instruction.mnemonic == "l.nop"
                and slot.instruction.imm == HALT_NOP_CODE
            ):
                self._halt_in_flight = True
        self._fetch_pc = address + 4
        return slot

    # ------------------------------------------------------------------ step

    def _ex_latency(self, instruction):
        """EX residency of one instruction under this spec."""
        kind = instruction.kind
        if kind == InstructionKind.DIV:
            return self.div_latency
        if kind == InstructionKind.MUL:
            return self._mul_latency
        return 1

    def step(self):
        """Advance the pipeline by one clock cycle; returns the CycleRecord."""
        if self.halted:
            raise SimulationError("pipeline is halted")
        slots = self._slots
        ex = self._ex
        last = self._num_stages - 1
        for slot in slots:
            slot.held = False

        # -- stall conditions, evaluated on the current (pre-advance) state
        ex_slot = slots[ex]
        ex_busy = (
            ex_slot.instruction is not None
            and ex_slot.ex_remaining != 0
            and self._ex_latency(ex_slot.instruction) > 1
        )
        interlock = not ex_busy and self._hazard_interlock()
        front_stall = ex_busy or interlock

        # -- advance pipeline registers (oldest first)
        for index in range(last, ex + 1, -1):
            slots[index] = slots[index - 1]
        if ex_busy:
            slots[ex + 1] = _bubble()
            slots[ex].held = True
        else:
            slots[ex + 1] = slots[ex]
            if interlock:
                slots[ex] = _bubble()
            else:
                for index in range(ex, 0, -1):
                    slots[index] = slots[index - 1]
                slots[0] = None   # filled after EX processing
        if front_stall:
            for index in range(self._nf):
                slots[index].held = True

        # -- stage actions, oldest to youngest
        self._process_ctrl(slots[ex + 1])
        redirect = self._process_ex(slots[ex])

        # -- fill the address stage (sees this cycle's redirect)
        if slots[0] is None:
            slots[0] = self._fetch_slot()

        # -- record the cycle
        ex_now = slots[ex]
        record = CycleRecord(
            cycle=self.cycle,
            slots=tuple(slot.view() for slot in slots),
            ex_operands=(
                (ex_now.a, ex_now.b) if ex_now.instruction is not None
                else None
            ),
            redirect=redirect,
            stall=front_stall,
        )
        self.trace.append(record)
        self.cycle += 1

        # -- retire the writeback-stage instruction at the end of its cycle
        self._retire(slots[last])
        slots[last] = _bubble()
        return record

    def _hazard_interlock(self):
        """Front-end interlock, evaluated on the pre-advance state.

        Forwarding machines stall only on load-use: walking the producer
        window youngest-first (EX onward, ``load_use_penalty`` stages
        deep), the first in-flight producer of one of the consumer's
        source registers decides — a load stalls the consumer, anything
        younger than the load has already forwarded past it.

        Non-forwarding machines stall while *any* producer of a consumer
        source occupies EX..the stage before write-back (write-through
        register file: a value is readable the cycle its producer sits in
        the final stage).  Squashed and drained slots are bubbles /
        inert instructions respectively, but drained producers still
        interlock — the hazard logic keys on stage contents, not on
        architectural liveness.
        """
        consumer = self._slots[self._nf - 1].instruction
        if consumer is None:
            return False
        sources = consumer.source_registers()
        if not sources:
            return False
        ex = self._ex
        if self._forwarding:
            decided = set()
            for index in range(ex, min(ex + self._load_use_penalty,
                                       self._num_stages - 1)):
                producer = self._slots[index].instruction
                if producer is None:
                    continue
                dest = producer.destination_register()
                if dest is None or dest == 0 or dest in decided:
                    continue
                if dest in sources and (
                    producer.kind == InstructionKind.LOAD
                ):
                    return True
                decided.add(dest)
            return False
        for index in range(ex, self._num_stages - 1):
            producer = self._slots[index].instruction
            if producer is None:
                continue
            dest = producer.destination_register()
            if dest is not None and dest != 0 and dest in sources:
                return True
        return False

    def _process_ex(self, slot):
        """Execute-stage actions; returns True if fetch was redirected."""
        instruction = slot.instruction
        if instruction is None:
            return False
        if self._draining:
            # instructions younger than the halt never commit; they drain
            # through the back of the pipeline without architectural effect
            return False
        state = self.state

        if self._ex_latency(instruction) > 1:
            if slot.ex_remaining < 0:
                # first EX cycle of a multi-cycle op: read operands, start
                # counting down
                slot.a = state.read_reg(instruction.ra)
                rb_value = state.read_reg(instruction.rb)
                slot.result = compute(
                    instruction, slot.a, rb_value, state.flag, state.carry,
                    slot.pc,
                )
                if instruction.spec.reads_rb:
                    slot.b = rb_value
                else:
                    slot.b = instruction.imm & 0xFFFFFFFF
                slot.ex_remaining = self._ex_latency(instruction) - 1
            else:
                slot.ex_remaining -= 1
            if slot.ex_remaining == 0:
                # multi-cycle EX ops (mul/div) write only rd
                state.write_reg(instruction.rd, slot.result.value)
            self._consume_delay_slot_marker(instruction, slot)
            return False

        slot.a = state.read_reg(instruction.ra)
        rb_value = state.read_reg(instruction.rb)
        result = compute(
            instruction, slot.a, rb_value, state.flag, state.carry, slot.pc
        )
        slot.result = result
        # the recorded b operand is the *effective* datapath input: the
        # operand mux selects the immediate for immediate forms, and that
        # is what drives the excitation model
        if instruction.spec.reads_rb:
            slot.b = rb_value
        else:
            slot.b = instruction.imm & 0xFFFFFFFF

        if (
            instruction.mnemonic == "l.nop"
            and instruction.imm == HALT_NOP_CODE
        ):
            self._draining = True
        if (
            result.value is not None
            and instruction.kind != InstructionKind.LOAD
        ):
            state.write_reg(instruction.rd, result.value)
        if result.link_value is not None:
            state.write_reg(REG_LINK, result.link_value)
        if result.flag is not None:
            state.flag = result.flag
        if result.carry is not None:
            state.carry = result.carry

        if instruction.is_control:
            if self._in_delay_slot:
                raise SimulationError(
                    f"control transfer in delay slot at {slot.pc:#010x}"
                )
            if result.branch_taken:
                # Redirect: the target address is presented to the
                # instruction memory within this cycle; squash the
                # wrong-path words behind the delay slot (every front
                # slot between ADR and the consumer).  The delay slot
                # itself proceeds.
                self._fetch_pc = result.branch_target
                for index in range(1, self._nf - 1):
                    self._slots[index] = _bubble()
                self._in_delay_slot = True
                return True
            return False
        self._consume_delay_slot_marker(instruction, slot)
        return False

    def _consume_delay_slot_marker(self, instruction, slot):
        if self._in_delay_slot and slot.ex_remaining <= 0:
            self._in_delay_slot = False

    def _process_ctrl(self, slot):
        instruction = slot.instruction
        if instruction is None or slot.result is None:
            return
        result = slot.result
        if instruction.kind == InstructionKind.LOAD:
            raw = self.memory.load(result.mem_addr, result.mem_size)
            self.state.write_reg(
                instruction.rd, load_extract(instruction.mnemonic, raw)
            )
        elif instruction.kind == InstructionKind.STORE:
            self.memory.store(result.mem_addr, result.store_value,
                              result.mem_size)

    def _retire(self, slot):
        if slot.instruction is None:
            return
        self.trace.retired.append((slot.pc, slot.instruction))
        self.state.instret += 1
        if (
            slot.instruction.mnemonic == "l.nop"
            and slot.instruction.imm == HALT_NOP_CODE
        ):
            self.halted = True

    # ------------------------------------------------------------------ run

    def run(self, max_cycles=DEFAULT_MAX_CYCLES):
        """Run to the halt instruction; returns the trace."""
        while not self.halted:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"exceeded {max_cycles} cycles without halting "
                    f"(pc={self._fetch_pc:#010x})"
                )
            self.step()
        return self.trace


def run_pipeline(program, div_latency=None, max_cycles=DEFAULT_MAX_CYCLES,
                 spec=None):
    """Convenience helper: run a program on the pipeline, return the simulator."""
    simulator = PipelineSimulator(program, div_latency=div_latency, spec=spec)
    simulator.run(max_cycles=max_cycles)
    return simulator
