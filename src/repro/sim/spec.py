"""Declarative pipeline specifications: the microarchitecture as a parameter.

Every engine in :mod:`repro.sim` — the scalar reference
(:class:`~repro.sim.pipeline.PipelineSimulator`), the two-phase vector
reconstruction (:mod:`repro.sim.vector`) and the lockstep batch engine
(:mod:`repro.sim.lockstep`) — historically modelled one fixed machine: the
customised six-stage mor1kx of the paper.  A :class:`PipelineSpec` turns
that machine into *data*: stage count and naming, forwarding on/off,
mul/div EX latencies, the load-use penalty, and the (currently single)
hazard and branch policies.  Named presets are registered litex-style in
:data:`PIPELINE_VARIANTS` and selected by name everywhere a design is
built (``build_design(..., pipeline_spec="deep7")``, ``Session``,
``ScenarioGrid``, ``repro --pipeline-spec``).

Design rules
------------

- **Timing classes are canonical.**  Each spec stage maps 1:1 onto one of
  the six canonical path groups (the :class:`~repro.sim.trace.Stage`
  members) — the netlist, delay profiles and excitation tables stay
  keyed by those groups.  A seven-stage spec simply has two columns that
  share the ``DC`` group's paths; a five-stage spec drops the ``FE``
  column.  Delays are **not** rescaled per spec in v1: the spec changes
  *when* each group is exercised, never *how fast* it is.
- **Specs change cycle timing only.**  Architectural semantics (the ISS,
  retirement order, memory and register state) are spec-invariant, which
  is what lets the vector engine reuse one architectural pass across
  every spec.
- **The default spec is the identity.**  :data:`DEFAULT_SPEC` reproduces
  today's machine bit-identically, and artifact keys / operating points
  only grow a spec digest for *non-default* specs, so every existing
  artifact, fingerprint and golden trace stays byte-stable.

Structural constraints (validated at construction):

- the first stage is the ``ADR`` group and exactly one stage is the
  ``EX`` group;
- at least two front stages (``ADR`` plus the consumer/delay-slot stage)
  and at least two back stages (a ``CTRL``-group memory-response stage
  directly after EX, then write-back);
- front stages draw from the ``ADR``/``FE``/``DC`` groups, back stages
  from ``CTRL``/``WB``.

Hazard semantics per spec (the scalar engine is the reference):

- *forwarding on* (default): results forward EX→EX; the only interlock
  is load-use — a consumer directly behind a load stalls
  ``load_use_penalty`` cycles.  The vectorized engines implement the
  one-cycle case (``load_use_penalty == 1``), which is every bundled
  preset with forwarding; other values run on the scalar reference.
- *forwarding off*: a consumer stalls at the last front stage while any
  in-flight producer of one of its source registers occupies a stage in
  ``[EX, WB)`` — the register file is write-through (a value is readable
  the cycle its producer sits in the final stage).  Only register
  operands interlock; the flag/carry path keeps its EX-resolved timing.
  Non-forwarding specs always run on the scalar reference engine
  (:attr:`PipelineSpec.fast_path` is False and ``vector.simulate``
  defers).
- taken control transfers redirect from EX and squash the
  ``num_front - 2`` wrong-path words behind the delay slot
  (``branch_policy == "delay-slot"``, the only supported policy).
- ``l.div``/``l.divu`` occupy EX for the divider latency;
  ``l.mul``/``l.muli``/``l.mulu`` for :attr:`PipelineSpec.mul_latency`
  cycles (multi-cycle EX occupancy stalls the front end).
"""

import hashlib
import json
from dataclasses import dataclass, field

from repro.isa.opcodes import KIND_CODE, InstructionKind
from repro.sim.trace import Stage

_DIV_CODE = KIND_CODE[InstructionKind.DIV]
_MUL_CODE = KIND_CODE[InstructionKind.MUL]

#: The only hazard policy implemented: stall-until-resolved interlocks.
HAZARD_POLICIES = ("interlock",)

#: The only branch policy implemented: OR1K single delay slot, resolve in EX.
BRANCH_POLICIES = ("delay-slot",)

#: Groups a front stage may draw from / back stages may draw from.
_FRONT_GROUPS = (Stage.ADR, Stage.FE, Stage.DC)
_BACK_GROUPS = (Stage.CTRL, Stage.WB)


@dataclass(frozen=True)
class StageDef:
    """One pipeline stage: a display name plus its canonical path group."""

    name: str
    group: Stage

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"stage name {self.name!r} is not an identifier")
        object.__setattr__(self, "group", Stage(self.group))


def _default_stages():
    return tuple(StageDef(stage.name, stage) for stage in Stage)


@dataclass(frozen=True)
class PipelineSpec:
    """Frozen description of one pipeline microarchitecture.

    Hashable (usable in design memo keys) and JSON round-trippable
    (:meth:`to_dict` / :meth:`from_dict`); :attr:`digest` is the stable
    content address that joins artifact keys for non-default specs.
    """

    name: str = "baseline6"
    stages: tuple = field(default_factory=_default_stages)
    forwarding: bool = True
    load_use_penalty: int = 1
    mul_latency: int = 1
    div_latency: int = 32
    hazard_policy: str = "interlock"
    branch_policy: str = "delay-slot"

    def __post_init__(self):
        stages = tuple(
            s if isinstance(s, StageDef) else StageDef(s[0], Stage(s[1]))
            for s in self.stages
        )
        object.__setattr__(self, "stages", stages)
        groups = [s.group for s in stages]
        if Stage.EX not in groups:
            raise ValueError("spec needs exactly one EX-group stage")
        ex_index = groups.index(Stage.EX)
        if groups.count(Stage.EX) != 1:
            raise ValueError("spec needs exactly one EX-group stage")
        if ex_index < 2:
            raise ValueError(
                "spec needs at least two front stages (ADR + delay slot)"
            )
        if len(stages) - ex_index - 1 < 2:
            raise ValueError(
                "spec needs at least two back stages (CTRL + WB)"
            )
        if groups[0] != Stage.ADR or Stage.ADR in groups[1:]:
            raise ValueError("the first (and only first) stage must be ADR")
        for stage_def in stages[1:ex_index]:
            if stage_def.group not in _FRONT_GROUPS:
                raise ValueError(
                    f"front stage {stage_def.name!r} must use an "
                    "ADR/FE/DC path group"
                )
        if groups[ex_index + 1] != Stage.CTRL:
            raise ValueError(
                "the stage after EX must use the CTRL path group "
                "(data-memory response)"
            )
        for stage_def in stages[ex_index + 1:]:
            if stage_def.group not in _BACK_GROUPS:
                raise ValueError(
                    f"back stage {stage_def.name!r} must use a "
                    "CTRL/WB path group"
                )
        if len({s.name for s in stages}) != len(stages):
            raise ValueError("stage names must be unique")
        if self.load_use_penalty < 1:
            raise ValueError("load_use_penalty must be at least 1 cycle")
        if self.mul_latency < 1:
            raise ValueError("mul_latency must be at least 1 cycle")
        if self.div_latency < 1:
            raise ValueError("div_latency must be at least 1 cycle")
        if self.hazard_policy not in HAZARD_POLICIES:
            raise ValueError(f"unknown hazard policy {self.hazard_policy!r}")
        if self.branch_policy not in BRANCH_POLICIES:
            raise ValueError(f"unknown branch policy {self.branch_policy!r}")
        object.__setattr__(self, "_group_of", tuple(int(g) for g in groups))
        object.__setattr__(self, "_ex_index", ex_index)

    # -- derived geometry ---------------------------------------------------

    @property
    def num_stages(self):
        return len(self.stages)

    @property
    def ex_index(self):
        """Column of the EX stage == number of front stages."""
        return self._ex_index

    @property
    def num_front(self):
        """Front stages (ADR .. the consumer/delay-slot stage)."""
        return self.ex_index

    @property
    def num_back(self):
        """Back stages (CTRL-group response stage .. write-back)."""
        return self.num_stages - self.ex_index - 1

    @property
    def squash_count(self):
        """Wrong-path words killed per taken transfer (behind the delay
        slot): every front slot except ADR and the delay slot itself."""
        return self.num_front - 2

    @property
    def group_of(self):
        """Canonical path group (as int) of every column."""
        return self._group_of

    @property
    def stage_names(self):
        return tuple(s.name for s in self.stages)

    @property
    def fast_path(self):
        """Whether the vectorized engines implement this spec's hazards
        (the cumsum reconstruction covers forwarding machines with a
        one-cycle load-use penalty; everything else runs on the scalar
        reference)."""
        return self.forwarding and self.load_use_penalty == 1

    @property
    def is_default(self):
        return self.digest == DEFAULT_SPEC.digest

    def ex_latency(self, kind_code):
        """EX residency (cycles) of an instruction kind code."""
        if kind_code == _DIV_CODE:
            return self.div_latency
        if kind_code == _MUL_CODE:
            return self.mul_latency
        return 1

    def canonical_column(self, group):
        """Representative column of one canonical group, or ``None`` when
        the spec has no stage on that group's paths.  Multi-column groups
        resolve to the column nearest EX (the one feeding the execute
        stage) — used by the fixed-width feature projection in
        :mod:`repro.ml.features`."""
        group = int(group)
        columns = [i for i, g in enumerate(self.group_of) if g == group]
        if not columns:
            return None
        if group in (int(Stage.ADR), int(Stage.FE), int(Stage.DC)):
            return columns[-1]
        return columns[0]

    def stage_label(self, column):
        """Canonical :class:`Stage` of one column — violation reports and
        serialized rows stay in the fixed six-group vocabulary across
        every spec."""
        return Stage(self.group_of[column])

    # -- identity -----------------------------------------------------------

    def to_dict(self):
        return {
            "name": self.name,
            "stages": [[s.name, int(s.group)] for s in self.stages],
            "forwarding": bool(self.forwarding),
            "load_use_penalty": int(self.load_use_penalty),
            "mul_latency": int(self.mul_latency),
            "div_latency": int(self.div_latency),
            "hazard_policy": self.hazard_policy,
            "branch_policy": self.branch_policy,
        }

    @classmethod
    def from_dict(cls, payload):
        payload = dict(payload)
        stages = tuple(
            StageDef(name, Stage(group))
            for name, group in payload.pop("stages")
        )
        return cls(stages=stages, **payload)

    @property
    def digest(self):
        """Structural content address (stable hex digest).

        The display :attr:`name` is excluded: two specs describing the
        same machine key the same artifacts regardless of registry name.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            payload = self.to_dict()
            del payload["name"]
            cached = hashlib.sha256(
                json.dumps(payload, sort_keys=True).encode()
            ).hexdigest()[:16]
            object.__setattr__(self, "_digest", cached)
        return cached


def _stages(*pairs):
    return tuple(StageDef(name, group) for name, group in pairs)


#: The paper's customised six-stage mor1kx — the identity spec.
DEFAULT_SPEC = PipelineSpec()

#: Named presets, litex-style: extendable by :func:`register_pipeline_spec`.
PIPELINE_VARIANTS = {
    "baseline6": DEFAULT_SPEC,
    # forwarding disabled: every RAW dependence interlocks until the
    # producer reaches write-back (scalar reference engine only)
    "nofwd6": PipelineSpec(name="nofwd6", forwarding=False),
    # five stages: the instruction SRAM read folds into the decode stage
    "shallow5": PipelineSpec(
        name="shallow5",
        stages=_stages(
            ("ADR", Stage.ADR), ("DC", Stage.DC), ("EX", Stage.EX),
            ("CTRL", Stage.CTRL), ("WB", Stage.WB),
        ),
    ),
    # seven stages: decode/register-read split over two DC-group columns,
    # so a taken transfer squashes two wrong-path words
    "deep7": PipelineSpec(
        name="deep7",
        stages=_stages(
            ("ADR", Stage.ADR), ("FE", Stage.FE), ("DC1", Stage.DC),
            ("DC2", Stage.DC), ("EX", Stage.EX), ("CTRL", Stage.CTRL),
            ("WB", Stage.WB),
        ),
    ),
    # iterative four-cycle multiplier in an otherwise-baseline machine
    "slowmul6": PipelineSpec(name="slowmul6", mul_latency=4),
    # two-cycle load-use penalty (scalar reference engine only)
    "slowmem6": PipelineSpec(name="slowmem6", load_use_penalty=2),
}


def get_pipeline_spec(spec=None):
    """Resolve ``spec`` (a :class:`PipelineSpec`, a registered preset
    name, a spec dict, or ``None`` for the default) to a spec object."""
    if spec is None:
        return DEFAULT_SPEC
    if isinstance(spec, PipelineSpec):
        return spec
    if isinstance(spec, str):
        try:
            return PIPELINE_VARIANTS[spec]
        except KeyError:
            known = ", ".join(sorted(PIPELINE_VARIANTS))
            raise ValueError(
                f"unknown pipeline spec {spec!r} (known: {known})"
            ) from None
    if isinstance(spec, dict):
        return PipelineSpec.from_dict(spec)
    raise TypeError(f"cannot resolve a pipeline spec from {spec!r}")


def register_pipeline_spec(spec, replace=False):
    """Register a preset under ``spec.name`` (litex ``CPU_VARIANTS``
    pattern); returns the spec for chaining."""
    spec = get_pipeline_spec(spec)
    if not replace and spec.name in PIPELINE_VARIANTS:
        raise ValueError(f"pipeline spec {spec.name!r} already registered")
    PIPELINE_VARIANTS[spec.name] = spec
    return spec
