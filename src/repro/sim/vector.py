"""Two-phase vectorized pipeline simulation.

The scalar :class:`~repro.sim.pipeline.PipelineSimulator` walks the machine
cycle by cycle, building six :class:`~repro.sim.trace.StageView` objects per
clock — faithful, but the dominant per-unit cost of a cold sweep.  This
module produces the *same trace* (bit-identical records, retired stream and
architectural state — enforced by ``tests/test_sim_equivalence.py``) in two
phases:

1. **ISS pass** — one architectural run of the
   :class:`~repro.sim.iss.FunctionalSimulator` with an observer collecting
   per-instruction arrays: program counters, EX operand values (the
   effective datapath ``b`` after the operand mux), branch outcomes and
   instruction metadata (timing class, hazard ports, divider membership).

2. **Array pass** — the cycle-accurate structure is reconstructed with
   NumPy.  The pipeline is rigid (the whole front end stalls as a unit, EX
   consumes one slot per advance), so the *fetch stream* — retired
   instructions, one squashed wrong-path word per taken transfer, and the
   short post-halt drain — fully determines every cycle.  EX entry cycles
   follow the recurrence ``e[f] = e[f-1] + L[f-1] + lu[f]`` (divider
   occupancy ``L``, load-use bubbles ``lu``), which is one ``cumsum``; the
   per-cycle stage occupancy, stall/redirect flags and held markers are
   then scatter/gather operations.

The reconstruction is exact only when fetched words are immutable over the
run.  A program that stores into any fetched address (self-modifying code,
wrong-path fetches into freshly written data) falls back to the scalar
engine, as does any ISS error — :func:`simulate` returns ``None`` and the
caller runs :class:`PipelineSimulator`, which remains the retained
reference semantics.

Consumers that only need arrays (the compiled-trace engine, the
characterisation flow) read the cycle/slot arrays directly and never pay
for record materialisation; :meth:`VectorPipelineRun.trace` builds the full
:class:`~repro.sim.trace.PipelineTrace` on demand for record-oriented
callers.
"""

import numpy as np

from repro.isa.encoding import EncodingError, decode
from repro.isa.opcodes import KIND_CODE, InstructionKind
from repro.obs.trace import span as obs_span
from repro.sim import predecode
from repro.sim.iss import HALT_NOP_CODE, FunctionalSimulator, SimulationError
from repro.sim.predecode import IssData
from repro.sim.pipeline import DEFAULT_DIV_LATENCY, DEFAULT_MAX_CYCLES
from repro.sim.spec import get_pipeline_spec
from repro.sim.trace import (
    BUBBLE_VIEW,
    CycleRecord,
    PipelineTrace,
    Stage,
    StageView,
)

_DIV_CODE = KIND_CODE[InstructionKind.DIV]
_MUL_CODE = KIND_CODE[InstructionKind.MUL]
_LOAD_CODE = KIND_CODE[InstructionKind.LOAD]
_STORE_CODE = KIND_CODE[InstructionKind.STORE]

_WORD_MASK = 0xFFFFFFFF

#: Number of pipeline stages.
_NUM_STAGES = len(Stage)


class _Fallback(Exception):
    """Internal signal: this program needs the scalar engine."""


_fallbacks = {"count": 0, "reason": ""}


def fallback_count():
    """Programs routed to the scalar engine since the last reset."""
    return _fallbacks["count"]


def last_fallback_reason():
    return _fallbacks["reason"]


def reset_fallback_count():
    _fallbacks["count"] = 0
    _fallbacks["reason"] = ""


class VectorPipelineRun:
    """Result of one vectorized pipeline simulation.

    Attributes come in two index spaces:

    - *slot arrays* (length ``num_slots``) describe the fetch stream in
      fetch order — ``seq`` numbers in the trace are exactly these indices;
    - *cycle arrays* (length ``num_cycles``) describe per-clock state;
      occupant arrays hold fetch-stream indices (``-1`` for bubbles that
      never had a fetch identity, e.g. startup and load-use bubbles).

    ``slot_squashed`` slots (wrong-path words killed by a taken transfer)
    carry their fetched identity — they are visible in the front columns
    until their branch resolves (``slot_squash_cycle``) and flow as
    bubbles afterwards; ``~slot_is_instr`` slots (undecodable wrong-path
    words past the halt) are bubbles everywhere.
    """

    def __init__(self, program, div_latency, state, memory, retired,
                 spec=None):
        self.program = program
        self.div_latency = div_latency
        self.spec = get_pipeline_spec(spec)
        self.state = state
        self.memory = memory
        self.retired = retired
        self.halted = True
        self.num_cycles = 0
        self.num_retired = len(retired)
        self._trace = None

    # -- trace materialisation ----------------------------------------------

    @property
    def trace(self):
        """Full :class:`PipelineTrace`, built in bulk on first access."""
        if self._trace is None:
            self._trace = self._build_trace()
        return self._trace

    def _views_for_slots(self):
        """Per-slot StageViews (one plain, one held variant), built once."""
        plain = []
        held = []
        instrs = self.slot_instr
        pcs = self.slot_pc
        for index in range(self.num_slots):
            instruction = instrs[index]
            if instruction is None:
                plain.append(BUBBLE_VIEW)
                held.append(BUBBLE_VIEW)
                continue
            base = dict(
                mnemonic=instruction.mnemonic,
                timing_class=instruction.timing_class,
                pc=int(pcs[index]),
                seq=index,
            )
            plain.append(StageView(held=False, **base))
            held.append(StageView(held=True, **base))
        return plain, held

    def _build_trace(self):
        plain, held_views = self._views_for_slots()
        post_bubble = self.slot_post_bubble
        is_instr = self.slot_is_instr
        squash_cycle = self.slot_squash_cycle
        has_ops = self.slot_has_ops
        a_vals = self.slot_a
        b_vals = self.slot_b
        stall = self.stall
        redirect = self.redirect
        ex_occ = self.ex_occ
        ex_held = self.ex_held
        front = self.front_idx
        back = self.back_occ
        num_front = self.spec.num_front
        records = []
        for cycle in range(self.num_cycles):
            stalled = bool(stall[cycle])
            views = []

            adr_slot = int(front[0][cycle])
            views.append(held_views[adr_slot] if stalled else plain[adr_slot])

            for column in range(1, num_front):
                slot = int(front[column][cycle])
                if slot < 0 or not is_instr[slot] \
                        or squash_cycle[slot] <= cycle:
                    views.append(BUBBLE_VIEW)
                else:
                    views.append(held_views[slot] if stalled else plain[slot])

            ex_slot = int(ex_occ[cycle])
            operands = None
            if ex_slot < 0 or post_bubble[ex_slot]:
                views.append(BUBBLE_VIEW)
            else:
                views.append(
                    held_views[ex_slot] if ex_held[cycle] else plain[ex_slot]
                )
                if has_ops[ex_slot]:
                    operands = (int(a_vals[ex_slot]), int(b_vals[ex_slot]))
                else:
                    operands = (None, None)

            for occ in back:
                slot = int(occ[cycle])
                if slot < 0 or post_bubble[slot]:
                    views.append(BUBBLE_VIEW)
                else:
                    views.append(plain[slot])

            records.append(
                CycleRecord(
                    cycle=cycle,
                    slots=tuple(views),
                    ex_operands=operands,
                    redirect=bool(redirect[cycle]),
                    stall=stalled,
                )
            )
        trace = PipelineTrace(program_name=self.program.name)
        trace.records = records
        trace.retired = list(self.retired)
        return trace

    # -- array views consumed by the compiled-trace engine -------------------

    def stage_occupancy(self):
        """Per-column ``(occupant, bubble, held)`` cycle arrays.

        Keyed by column index (``Stage`` members resolve against the
        default spec's six columns — ``IntEnum`` keys hash as plain
        ints).  Occupants are fetch-stream indices (``-1`` for
        identity-less bubbles); ``bubble`` is the *displayed* bubble
        state (squashed and undecodable slots show as bubbles past the
        fetch column).  Column 0 holds the true fetch-stage occupant —
        callers that need the paper's driver mapping (ADR keyed on EX)
        substitute the EX column themselves.
        """
        post_bubble = self.slot_post_bubble
        occupancy = {}
        adr_bubble = ~self.slot_is_instr[self.front_idx[0]]
        occupancy[0] = (
            self.front_idx[0], adr_bubble, self.stall & ~adr_bubble
        )
        cycles = np.arange(self.num_cycles, dtype=np.int64)
        for column in range(1, self.spec.num_front):
            idx = self.front_idx[column]
            clipped = np.maximum(idx, 0)
            bubble = (
                (idx < 0)
                | ~self.slot_is_instr[clipped]
                | (self.slot_squash_cycle[clipped] <= cycles)
            )
            occupancy[column] = (idx, bubble, self.stall & ~bubble)
        ex = self.spec.ex_index
        ex_bubble = (self.ex_occ < 0) | post_bubble[np.maximum(self.ex_occ, 0)]
        occupancy[ex] = (self.ex_occ, ex_bubble, self.ex_held)
        false = np.zeros(self.num_cycles, dtype=bool)
        for offset, occ in enumerate(self.back_occ):
            bubble = (occ < 0) | post_bubble[np.maximum(occ, 0)]
            occupancy[ex + 1 + offset] = (occ, bubble, false)
        return occupancy


def simulate(program, div_latency=None, max_cycles=DEFAULT_MAX_CYCLES,
             spec=None):
    """Vectorized pipeline run, or ``None`` when the program needs the
    scalar engine (self-modifying fetch stream, ISS error, or a pipeline
    spec outside the cumsum fast path — the caller falls back to
    :class:`~repro.sim.pipeline.PipelineSimulator`).

    Raises :class:`SimulationError` exactly where the scalar engine would
    (undecodable pre-halt wrong-path word, cycle budget exceeded).
    """
    spec = get_pipeline_spec(spec)
    if div_latency is None:
        div_latency = spec.div_latency
    if div_latency < 1:
        raise ValueError("div_latency must be at least 1 cycle")
    try:
        if not spec.fast_path:
            raise _Fallback(
                f"spec {spec.name!r} hazards need the scalar engine"
            )
        with obs_span("sim.vector", program=program.name):
            return _simulate(program, div_latency, max_cycles, spec)
    except _Fallback as fallback:
        _fallbacks["count"] += 1
        _fallbacks["reason"] = str(fallback)
        return None


# -- phase 1: the ISS pass ----------------------------------------------------


def _collect_iss(program, max_cycles):
    """Run the object-layer functional simulator, collecting columnar data.

    This is the slow-path twin of :func:`repro.sim.predecode.collect`: it
    owns every rare case the pre-decoded loop defers (fetches outside the
    decoded text, semantics errors, budget overruns) and produces the same
    :class:`~repro.sim.predecode.IssData`.

    The step cap equals the cycle budget: the pipeline retires at most one
    instruction per cycle, so an ISS overrunning ``max_cycles`` steps
    implies the scalar engine would overrun ``max_cycles`` cycles too.
    """
    pcs, instrs, a_vals, b_vals = [], [], [], []
    takens, targets, metas = [], [], []
    store_words = set()
    meta_cache = {}
    intern = {}
    class_names = []

    def meta_for(instruction):
        meta = meta_cache.get(instruction)
        if meta is None:
            spec = instruction.spec
            cls = instruction.timing_class
            cls_id = intern.get(cls)
            if cls_id is None:
                cls_id = intern[cls] = len(class_names)
                class_names.append(cls)
            dest = instruction.destination_register()
            source_mask = 0
            for register in instruction.source_registers():
                source_mask |= 1 << register
            meta = (
                cls_id,
                KIND_CODE[spec.kind],
                -1 if dest is None else dest,
                source_mask,
                spec.reads_rb,
                instruction.imm & _WORD_MASK,
            )
            meta_cache[instruction] = meta
        return meta

    def observer(pc, instruction, a, b, result):
        meta = meta_for(instruction)
        pcs.append(pc)
        instrs.append(instruction)
        a_vals.append(a)
        b_vals.append(b if meta[4] else meta[5])
        takens.append(bool(result.branch_taken))
        targets.append(result.branch_target if result.branch_taken else 0)
        metas.append(meta)
        if meta[1] == _STORE_CODE:
            first = result.mem_addr & ~3
            last = (result.mem_addr + result.mem_size - 1) & ~3
            store_words.add(first)
            if last != first:
                store_words.add(last)

    simulator = FunctionalSimulator(program, observer=observer)
    steps = 0
    while not simulator.halted:
        if steps >= max_cycles:
            # the pipeline retires at most one instruction per cycle, so
            # the scalar engine provably exceeds the budget too — same
            # error, no fallback run needed
            raise SimulationError(
                f"exceeded {max_cycles} cycles without halting "
                f"(pc={simulator.state.pc:#010x})"
            )
        try:
            simulator.step()
        except Exception as error:   # scalar engine reproduces the error
            raise _Fallback(f"ISS error: {error}") from error
        steps += 1
    meta_matrix = np.array(metas, dtype=np.int64)       # (N, 6)
    return IssData(
        state=simulator.state,
        memory=simulator.memory,
        retired=list(simulator.retired),
        pcs=np.array(pcs, dtype=np.int64),
        instrs=instrs,
        a_vals=np.array(a_vals, dtype=np.uint64),
        b_vals=np.array(b_vals, dtype=np.uint64),
        taken=np.array(takens, dtype=bool),
        targets=np.array(targets, dtype=np.int64),
        cls=meta_matrix[:, 0],
        kind=meta_matrix[:, 1],
        dest=meta_matrix[:, 2],
        src=meta_matrix[:, 3],
        store_words=store_words,
        class_names=class_names,
    )


# -- phase 2: array reconstruction -------------------------------------------


def _simulate(program, div_latency, max_cycles, spec):
    data = predecode.collect(program, max_cycles)
    if data is None:
        with obs_span("iss.object", program=program.name):
            data = _collect_iss(program, max_cycles)
    return _reconstruct(program, div_latency, max_cycles, data, spec)


def reconstruct(program, data, div_latency=None,
                max_cycles=DEFAULT_MAX_CYCLES, spec=None):
    """Pipeline run from an externally collected ISS pass.

    This is the entry point the lockstep engine uses: it hands each lane's
    :class:`~repro.sim.predecode.IssData` to the same array reconstruction
    that :func:`simulate` runs, with identical fallback semantics
    (``None`` when the program needs the scalar engine).
    """
    spec = get_pipeline_spec(spec)
    if div_latency is None:
        div_latency = spec.div_latency
    if div_latency < 1:
        raise ValueError("div_latency must be at least 1 cycle")
    try:
        if not spec.fast_path:
            raise _Fallback(
                f"spec {spec.name!r} hazards need the scalar engine"
            )
        return _reconstruct(program, div_latency, max_cycles, data, spec)
    except _Fallback as fallback:
        _fallbacks["count"] += 1
        _fallbacks["reason"] = str(fallback)
        return None


def _reconstruct(program, div_latency, max_cycles, data, spec):
    instrs = data.instrs
    targets = data.targets
    store_words = data.store_words
    class_names = data.class_names

    num_front = spec.num_front
    num_back = spec.num_back
    squash = spec.squash_count
    mul_latency = spec.mul_latency

    num_retired = len(data.pcs)
    retired_cls = data.cls
    retired_kind = data.kind
    retired_dest = data.dest
    retired_src = data.src
    retired_pc = data.pcs
    retired_a = data.a_vals
    retired_b = data.b_vals
    taken = data.taken

    # -- fetch-stream layout: retired instructions in program order, plus
    # ``squash`` wrong-path words starting two positions after every taken
    # transfer (branch, delay slot, victims..., target, ...)
    taken_count = np.cumsum(taken)
    offsets = np.zeros(num_retired, dtype=np.int64)
    if num_retired > 2:
        offsets[2:] = squash * taken_count[:-2]
    stream_pos = np.arange(num_retired, dtype=np.int64) + offsets
    taken_idx = np.nonzero(taken)[0]                    # retired indices
    victim_of = np.repeat(taken_idx, squash)
    victim_slot = np.tile(np.arange(squash, dtype=np.int64),
                          len(taken_idx))
    victim_pos = stream_pos[victim_of] + 2 + victim_slot
    victim_pc = retired_pc[victim_of] + 8 + 4 * victim_slot

    num_main = num_retired + len(victim_of)
    halt_pos = int(stream_pos[-1])

    # slot arrays over the main stream
    slot_pc = np.zeros(num_main, dtype=np.int64)
    slot_cls = np.full(num_main, -1, dtype=np.int64)
    slot_kind = np.full(num_main, -1, dtype=np.int64)
    slot_dest = np.full(num_main, -1, dtype=np.int64)
    slot_src = np.zeros(num_main, dtype=np.int64)
    slot_a = np.zeros(num_main, dtype=np.uint64)
    slot_b = np.zeros(num_main, dtype=np.uint64)
    slot_taken = np.zeros(num_main, dtype=bool)
    slot_is_instr = np.zeros(num_main, dtype=bool)
    slot_squashed = np.zeros(num_main, dtype=bool)
    slot_has_ops = np.zeros(num_main, dtype=bool)
    slot_instr = np.empty(num_main, dtype=object)

    slot_pc[stream_pos] = retired_pc
    slot_cls[stream_pos] = retired_cls
    slot_kind[stream_pos] = retired_kind
    slot_dest[stream_pos] = retired_dest
    slot_src[stream_pos] = retired_src
    slot_a[stream_pos] = retired_a
    slot_b[stream_pos] = retired_b
    slot_taken[stream_pos] = taken
    slot_is_instr[stream_pos] = True
    slot_has_ops[stream_pos] = True
    slot_instr[stream_pos] = np.array(instrs, dtype=object)

    # victims: fetched (and decoded) wrong-path words.  The guard below
    # ensures fetched words are immutable, so the initial image is what the
    # scalar engine decoded.  Decode failures reproduce the scalar rules:
    # past the first fetched halt word they are bubbles, before it they
    # are fatal.
    fetched = set(np.unique(retired_pc).tolist())
    decode_cache = {}
    halt_fetch_pos = halt_pos   # may move earlier: wrong-path halt words
    if len(victim_of):
        slot_pc[victim_pos] = victim_pc
        slot_squashed[victim_pos] = True
        # victim_pos is increasing (stream order), which the running
        # halt-in-flight check relies on
        for position, address in zip(
            victim_pos.tolist(), victim_pc.tolist()
        ):
            fetched.add(address)
            instruction = _decode_fetch(
                program, address, decode_cache,
                halt_in_flight=position > halt_fetch_pos,
            )
            slot_instr[position] = instruction
            if instruction is not None:
                slot_is_instr[position] = True
                slot_cls[position] = _intern_class(
                    instruction, class_names
                )
            if _is_halt(instruction):
                halt_fetch_pos = min(halt_fetch_pos, position)

    # EX occupancy and entry cycles over the main stream:
    #   L   — EX residency (div/mul latencies per the spec, 1 otherwise)
    #   lu  — one-cycle load-use bubble in front of the consumer
    live = slot_is_instr & ~slot_squashed
    lat = np.ones(num_main, dtype=np.int64)
    lat[live & (slot_kind == _DIV_CODE)] = div_latency
    if mul_latency != 1:
        lat[live & (slot_kind == _MUL_CODE)] = mul_latency
    lu = np.zeros(num_main, dtype=bool)
    if num_main > 1:
        producer_load = live[:-1] & (slot_kind[:-1] == _LOAD_CODE)
        producer_dest = slot_dest[:-1]
        consumer_reads = (
            (slot_src[1:] >> np.maximum(producer_dest, 0)) & 1
        ).astype(bool)
        lu[1:] = (
            live[1:] & producer_load & (producer_dest > 0) & consumer_reads
        )
    lu_int = lu.astype(np.int64)

    entry = np.empty(num_main, dtype=np.int64)
    entry[0] = num_front
    if num_main > 1:
        entry[1:] = num_front + np.cumsum(lat[:-1])
    entry += np.cumsum(lu_int)

    num_cycles = int(entry[halt_pos]) + num_back + 1
    if num_cycles > max_cycles:
        raise SimulationError(
            f"exceeded {max_cycles} cycles without halting "
            f"(pc={int(retired_pc[-1]):#010x})"
        )

    # -- post-halt drain: fetching continues sequentially (no redirects
    # execute past the halt) until the trace ends.  A handful of slots —
    # generated scalar-wise, including their stall contributions.
    main_stalls = int(np.sum(lat - 1) + np.sum(lu_int))
    drain = _generate_drain(
        program, decode_cache, fetched,
        continuation=_drain_continuation(
            stream_pos, squash, num_main, taken_idx, targets, retired_pc
        ),
        start_index=num_main,
        prev_live=bool(live[-1]),
        prev_kind=int(slot_kind[-1]),
        prev_dest=int(slot_dest[-1]),
        entry_next=int(entry[-1] + lat[-1]),
        stall_total=main_stalls,
        num_cycles=num_cycles,
        div_latency=div_latency,
        mul_latency=mul_latency,
        class_names=class_names,
    )

    # stores into fetched words would make the reconstruction diverge from
    # fetch-time decoding — the scalar engine owns those programs
    if store_words and not store_words.isdisjoint(fetched):
        raise _Fallback("store into fetched address range")

    if drain.count:
        slot_pc = np.concatenate([slot_pc, drain.pc])
        slot_cls = np.concatenate([slot_cls, drain.cls])
        slot_kind = np.concatenate([slot_kind, drain.kind])
        slot_a = np.concatenate([slot_a, np.zeros(drain.count, np.uint64)])
        slot_b = np.concatenate([slot_b, np.zeros(drain.count, np.uint64)])
        slot_taken = np.concatenate(
            [slot_taken, np.zeros(drain.count, bool)]
        )
        slot_is_instr = np.concatenate([slot_is_instr, drain.is_instr])
        slot_squashed = np.concatenate(
            [slot_squashed, np.zeros(drain.count, bool)]
        )
        slot_has_ops = np.concatenate(
            [slot_has_ops, np.zeros(drain.count, bool)]
        )
        slot_instr = np.concatenate([slot_instr, drain.instr])
        entry = np.concatenate([entry, drain.entry])
        lat = np.concatenate([lat, drain.lat])
        lu_int = np.concatenate([lu_int, drain.lu])

    num_slots = len(slot_pc)

    # -- EX timeline: one startup bubble per front stage, then per slot an
    # optional load-use bubble followed by its (clipped) EX residency
    residency = np.clip(
        np.minimum(lat, num_cycles - entry), 0, None
    )
    lu_counts = np.where(entry - 1 < num_cycles, lu_int, 0)
    segment_occ = np.empty(2 * num_slots, dtype=np.int64)
    segment_occ[0::2] = -1
    segment_occ[1::2] = np.arange(num_slots)
    segment_cnt = np.empty(2 * num_slots, dtype=np.int64)
    segment_cnt[0::2] = lu_counts
    segment_cnt[1::2] = residency
    segment_lu = np.zeros(2 * num_slots, dtype=bool)
    segment_lu[0::2] = True

    timeline_occ = np.repeat(segment_occ, segment_cnt)
    timeline_lu = np.repeat(segment_lu, segment_cnt)
    body = num_cycles - num_front
    if len(timeline_occ) < body:
        raise _Fallback("EX timeline underrun")   # engine bug guard
    ex_occ = np.concatenate(
        [np.full(num_front, -1, dtype=np.int64), timeline_occ[:body]]
    )
    ex_is_lu = np.concatenate(
        [np.zeros(num_front, dtype=bool), timeline_lu[:body]]
    )
    previous_occ = np.concatenate([[np.int64(-1)], ex_occ[:-1]])
    ex_held = (ex_occ == previous_occ) & (ex_occ >= 0)
    stall = ex_held | ex_is_lu

    redirect = np.zeros(num_cycles, dtype=bool)
    # victims stay visible in the front columns until their branch
    # resolves in EX and squashes them (relevant when the spec squashes
    # more than one word: the older victim flows one column deep first)
    squash_cycle = np.full(num_slots, np.iinfo(np.int64).max,
                           dtype=np.int64)
    if len(taken_idx):
        redirect[entry[stream_pos[taken_idx]]] = True
        squash_cycle[victim_pos] = entry[stream_pos[victim_of]]

    # back columns: the "left EX" event ripples one column per cycle
    back_occ = [np.where(previous_occ != ex_occ, previous_occ, -1)]
    for _ in range(1, num_back):
        back_occ.append(
            np.concatenate([[np.int64(-1)], back_occ[-1][:-1]])
        )

    fetch_count = np.cumsum(~stall)
    front_idx = [fetch_count - 1 - column for column in range(num_front)]
    if int(front_idx[0][-1]) != num_slots - 1:
        raise _Fallback("fetch accounting mismatch")   # engine bug guard

    run = VectorPipelineRun(
        program=program,
        div_latency=div_latency,
        state=data.state,
        memory=data.memory,
        retired=data.retired,
        spec=spec,
    )
    run.num_cycles = num_cycles
    run.num_slots = num_slots
    run.class_names = list(class_names)
    run.slot_pc = slot_pc
    run.slot_instr = slot_instr
    run.slot_class = slot_cls
    run.slot_kind = slot_kind
    run.slot_a = slot_a
    run.slot_b = slot_b
    run.slot_taken = slot_taken
    run.slot_is_instr = slot_is_instr
    run.slot_squashed = slot_squashed
    run.slot_has_ops = slot_has_ops
    run.slot_post_bubble = ~slot_is_instr | slot_squashed
    run.slot_squash_cycle = squash_cycle
    run.stall = stall
    run.redirect = redirect
    run.ex_occ = ex_occ
    run.ex_held = ex_held
    run.front_idx = front_idx
    run.back_occ = back_occ
    # canonical aliases of the default six-stage layout (also valid for
    # any spec with >= 3 front / 2 back stages)
    run.adr_idx = front_idx[0]
    run.fe_idx = front_idx[1]
    run.dc_idx = front_idx[2] if num_front > 2 else None
    run.ctrl_occ = back_occ[0]
    run.wb_occ = back_occ[1]
    return run


def _is_halt(instruction):
    return (
        instruction is not None
        and instruction.mnemonic == "l.nop"
        and instruction.imm == HALT_NOP_CODE
    )


def _intern_class(instruction, class_names):
    cls = instruction.timing_class
    try:
        return class_names.index(cls)
    except ValueError:
        class_names.append(cls)
        return len(class_names) - 1


def _decode_fetch(program, address, decode_cache, halt_in_flight):
    """Fetch-time decode of a wrong-path/drain word from the initial image.

    Mirrors ``PipelineSimulator._decode_at``: program text wins, other
    words decode from memory (which the store-overlap guard pins to the
    initial image); failures are bubbles once a halt word has been
    fetched, fatal before that.
    """
    if address in decode_cache:
        return decode_cache[address]
    instruction = program.instructions.get(address)
    if instruction is None:
        word = program.words.get(address, 0)
        try:
            instruction = decode(word)
        except EncodingError as error:
            if not halt_in_flight:
                raise SimulationError(
                    f"cannot decode fetched word {word:#010x} at "
                    f"{address:#010x}: {error}"
                ) from error
            instruction = None
    decode_cache[address] = instruction
    return instruction


def _drain_continuation(stream_pos, squash, num_main, taken_idx, targets,
                        retired_pc):
    """First post-halt fetch address: the last redirect's target when the
    stream ends right behind the last taken transfer's delay slot (and
    its squashed victims, when the spec fetches any), sequential after
    the halt otherwise."""
    if len(taken_idx):
        last_taken = int(taken_idx[-1])
        if int(stream_pos[last_taken]) + 1 + squash == num_main - 1:
            return int(targets[last_taken])
    return int(retired_pc[-1]) + 4


class _Drain:
    def __init__(self):
        self.pc, self.cls, self.kind = [], [], []
        self.is_instr, self.instr = [], []
        self.entry, self.lat, self.lu = [], [], []
        self.count = 0

    def finalize(self):
        self.pc = np.array(self.pc, dtype=np.int64)
        self.cls = np.array(self.cls, dtype=np.int64)
        self.kind = np.array(self.kind, dtype=np.int64)
        self.is_instr = np.array(self.is_instr, dtype=bool)
        self.instr = np.array(self.instr, dtype=object)
        self.entry = np.array(self.entry, dtype=np.int64)
        self.lat = np.array(self.lat, dtype=np.int64)
        self.lu = np.array(self.lu, dtype=np.int64)
        return self


def _generate_drain(program, decode_cache, fetched, continuation,
                    start_index, prev_live, prev_kind, prev_dest,
                    entry_next, stall_total, num_cycles, div_latency,
                    mul_latency, class_names):
    """Scalar tail: the few post-halt slots still fetched before the trace
    ends.  One slot is fetched per non-stall cycle, so slot ``k`` exists
    iff ``num_cycles - stall_total >= k + 1``; each appended slot may add
    its own stalls (drain multi-cycle EX ops never finish and stall to
    the end)."""
    drain = _Drain()
    address = continuation
    index = start_index
    while num_cycles - stall_total >= index + 1:
        instruction = _decode_fetch(
            program, address, decode_cache, halt_in_flight=True
        )
        fetched.add(address)
        live = instruction is not None
        is_multi = live and (
            (instruction.kind == InstructionKind.DIV and div_latency > 1)
            or (instruction.kind == InstructionKind.MUL and mul_latency > 1)
        )
        is_lu = False
        if live and prev_live and prev_kind == _LOAD_CODE and prev_dest > 0:
            if prev_dest in instruction.source_registers():
                is_lu = True
        entry_here = entry_next + (1 if is_lu else 0)
        if is_lu and entry_here - 1 <= num_cycles - 1:
            stall_total += 1
        if is_multi:
            # a draining multi-cycle op is never processed, so it stays
            # "busy" (ex_remaining == -1) and stalls the machine to the end
            if entry_here <= num_cycles - 2:
                stall_total += (num_cycles - 1) - entry_here
            lat_here = max(num_cycles - entry_here, 1)
        else:
            lat_here = 1

        drain.pc.append(address)
        drain.instr.append(instruction)
        drain.is_instr.append(live)
        drain.cls.append(
            _intern_class(instruction, class_names) if live else -1
        )
        drain.kind.append(
            KIND_CODE[instruction.kind] if live else -1
        )
        drain.entry.append(entry_here)
        drain.lat.append(lat_here)
        drain.lu.append(1 if is_lu else 0)
        drain.count += 1

        prev_live = live
        prev_kind = KIND_CODE[instruction.kind] if live else -1
        prev_dest = (
            -1 if not live or instruction.destination_register() is None
            else instruction.destination_register()
        )
        entry_next = entry_here + lat_here
        address += 4
        index += 1
    return drain.finalize()
