"""Tightly-coupled SRAM model.

The customised core uses fast single-cycle SRAM macros for both instruction
and data memory (paper §III-A).  Functionally this is a flat, big-endian,
byte-addressable store; timing is handled by the timing model, which treats
the SRAM macros as path endpoints like any flip-flop.
"""

from repro.utils.bitops import mask

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS


class MemoryError_(ValueError):
    """Raised for invalid accesses (bad size, address range)."""


class Memory:
    """Sparse big-endian byte-addressable memory."""

    def __init__(self, name="mem"):
        self.name = name
        self._pages = {}

    def _page(self, address):
        index = address >> _PAGE_BITS
        page = self._pages.get(index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[index] = page
        return page

    def load(self, address, size):
        """Read ``size`` bytes (1, 2 or 4) big-endian; unwritten bytes are 0."""
        self._check(address, size)
        value = 0
        for offset in range(size):
            byte_addr = address + offset
            page = self._pages.get(byte_addr >> _PAGE_BITS)
            byte = page[byte_addr & (_PAGE_SIZE - 1)] if page else 0
            value = (value << 8) | byte
        return value

    def store(self, address, value, size):
        """Write the low ``size`` bytes of ``value`` big-endian."""
        self._check(address, size)
        value &= mask(8 * size)
        for offset in range(size):
            byte = (value >> (8 * (size - 1 - offset))) & 0xFF
            byte_addr = address + offset
            self._page(byte_addr)[byte_addr & (_PAGE_SIZE - 1)] = byte

    @staticmethod
    def _check(address, size):
        if size not in (1, 2, 4):
            raise MemoryError_(f"unsupported access size {size}")
        if address < 0 or address + size > (1 << 32):
            raise MemoryError_(f"address out of range: {address:#x}")

    def load_word(self, address):
        return self.load(address, 4)

    def store_word(self, address, value):
        self.store(address, value, 4)

    def words(self):
        """Iterate (address, word) over all word-aligned non-zero words."""
        for index in sorted(self._pages):
            page = self._pages[index]
            base = index << _PAGE_BITS
            for offset in range(0, _PAGE_SIZE, 4):
                chunk = page[offset:offset + 4]
                if any(chunk):
                    yield base + offset, int.from_bytes(chunk, "big")

    def copy(self):
        """Deep copy (used to snapshot initial images for repeated runs)."""
        clone = Memory(self.name)
        clone._pages = {k: bytearray(v) for k, v in self._pages.items()}
        return clone
