"""Cycle-accurate model of the customised mor1kx-style OpenRISC core.

The paper's case study is the mor1kx *cappuccino* 6-stage in-order pipeline
(Fig. 4): Address, Fetch, Decode, Execute, Mem/Control, Writeback, with
tightly-coupled single-cycle SRAMs for instructions and data, full operand
forwarding, a one-cycle load-use interlock, a single-cycle 32x32 multiplier
and branch delay slots.

Two execution models are provided:

- :class:`~repro.sim.iss.FunctionalSimulator` — a fast architectural ISS used
  as the golden reference;
- :class:`~repro.sim.pipeline.PipelineSimulator` — the cycle-accurate 6-stage
  model whose per-cycle stage occupancy (which instruction is in flight in
  each stage, ``I_s[t]`` in the paper) feeds the dynamic timing analysis and
  the clock-adjustment controller.
"""

from repro.sim.iss import FunctionalSimulator, SimulationError
from repro.sim.memory import Memory
from repro.sim.pipeline import PipelineSimulator
from repro.sim.state import ArchState
from repro.sim.trace import CycleRecord, PIPELINE_STAGES, PipelineTrace, Stage

__all__ = [
    "ArchState",
    "Memory",
    "FunctionalSimulator",
    "PipelineSimulator",
    "SimulationError",
    "PipelineTrace",
    "CycleRecord",
    "Stage",
    "PIPELINE_STAGES",
]
