"""Cross-program lockstep execution over pre-decoded images.

The dispatch-table loop in :func:`repro.sim.predecode.collect` executes one
program at a time; its per-step cost is a handful of Python bytecodes.  For
fuzzing-scale batches (hundreds to thousands of random programs) even that
is the dominant cost, and the work is embarrassingly data-parallel: every
lane runs the same architectural step function over its own state.

This module executes **many programs simultaneously** as NumPy arrays:

- register files are one ``(n_lanes, 32)`` ``int64`` matrix;
- per architectural step, each active lane fetches from a concatenated
  slot table (its image's struct-of-arrays columns shifted by a per-lane
  base) and the batch executes grouped by dispatch id — one masked array
  operation per op present in the step, across the whole batch;
- halted lanes fall out of the active set; lanes that hit any condition
  the fast path cannot represent (fetch outside the decoded text,
  misaligned access, control in a delay slot, uncovered mnemonic, budget
  overrun) are *evicted* and re-run through the per-program engines,
  which own every rare path — bit-identity by construction;
- loads and stores are rare and run scalar per lane against each lane's
  own :class:`~repro.sim.memory.Memory`.

The collected per-lane columns are exactly the
:class:`~repro.sim.predecode.IssData` that ``vector._reconstruct``
consumes, so lockstep batches feed the same compiled-trace construction
(:func:`repro.dta.compiled.compile_vector_run`) as every other engine,
and the differential harness checks the whole stack for bit-identity.

Lockstep wins when lanes are plentiful and similar in length; a lone
program (or a suite of 18) amortises nothing and stays on the scalar
dispatch loop.  See ARCHITECTURE.md for the selection rules.
"""

import time

import numpy as np

from repro.isa.registers import REG_LINK
from repro.obs.trace import span as obs_span
from repro.sim import predecode
from repro.sim.pipeline import DEFAULT_MAX_CYCLES
from repro.sim.predecode import (
    OP_ADD,
    OP_ADDC,
    OP_ADDI,
    OP_AND,
    OP_ANDI,
    OP_BF,
    OP_BNF,
    OP_CMOV,
    OP_DIV,
    OP_DIVU,
    OP_EXTBS,
    OP_EXTBZ,
    OP_EXTHS,
    OP_EXTHZ,
    OP_FF1,
    OP_HALT,
    OP_J,
    OP_JAL,
    OP_JALR,
    OP_JR,
    OP_LBS,
    OP_LBZ,
    OP_LHS,
    OP_LHZ,
    OP_LWZ,
    OP_MOVHI,
    OP_MUL,
    OP_MULI,
    OP_NOP,
    OP_OR,
    OP_ORI,
    OP_ROR,
    OP_RORI,
    OP_SB,
    OP_SF,
    OP_SFI,
    OP_SH,
    OP_SLL,
    OP_SLLI,
    OP_SRA,
    OP_SRAI,
    OP_SRL,
    OP_SRLI,
    OP_SUB,
    OP_SW,
    OP_XOR,
    OP_XORI,
    image_for,
)

_MASK = np.int64(0xFFFFFFFF)
_SIGN = np.int64(0x80000000)
_TWO32 = np.int64(0x100000000)

_LOAD_STORE_OPS = frozenset(
    (OP_LWZ, OP_LBZ, OP_LBS, OP_LHZ, OP_LHS, OP_SW, OP_SB, OP_SH)
)

_stats = {
    "batches": 0,
    "lanes": 0,
    "lane_deferrals": 0,
    "lane_cache_hits": 0,
    "steps": 0,
    "lockstep_seconds": 0.0,
}


def stats():
    """Copy of the batch counters (reset with :func:`reset_stats`)."""
    return dict(_stats)


def reset_stats():
    for key in _stats:
        _stats[key] = 0.0 if key.endswith("seconds") else 0


def _signed(values):
    """Two's-complement view of 32-bit values held in int64."""
    return np.where(values & _SIGN != 0, values - _TWO32, values)


def collect_batch(programs, max_cycles=DEFAULT_MAX_CYCLES):
    """Architectural ISS pass over a batch of programs, in lockstep.

    Returns one :class:`~repro.sim.predecode.IssData` per program, or
    ``None`` for lanes that need the per-program path (the caller re-runs
    them through :func:`repro.sim.vector.simulate`, which reproduces any
    error the object ISS would raise).  Results are memoised on the
    shared decode images exactly like :func:`predecode.collect`, so mixed
    lockstep/scalar workflows never re-execute a program.
    """
    programs = list(programs)
    n = len(programs)
    results = [None] * n
    images = [image_for(program) for program in programs]
    _stats["batches"] += 1
    _stats["lanes"] += n

    # lanes served from the image cache, pre-deferred lanes, and lanes
    # whose image already runs in this batch (duplicate programs)
    lanes = []
    lane_owner = {}               # id(image) -> batch position
    duplicates = []               # (program index, owning batch position)
    for i, (program, image) in enumerate(zip(programs, images)):
        if not image.fast_ok:
            _stats["lane_deferrals"] += 1
            continue
        cached = image.iss_results.get(max_cycles)
        if cached is not None:
            _stats["lane_cache_hits"] += 1
            if cached is predecode._DEFERRED:
                _stats["lane_deferrals"] += 1
                continue
            results[i] = predecode._clone_data(cached, program)
            continue
        owner = lane_owner.get(id(image))
        if owner is not None:
            duplicates.append((i, owner))
            continue
        lane_owner[id(image)] = len(lanes)
        lanes.append(i)

    if lanes:
        start = time.perf_counter()
        with obs_span("iss.lockstep", lanes=len(lanes)):
            _run_lanes(programs, images, lanes, max_cycles, results)
        _stats["lockstep_seconds"] += time.perf_counter() - start

    for i, owner in duplicates:
        image = images[i]
        cached = image.iss_results.get(max_cycles)
        if cached is None or cached is predecode._DEFERRED:
            _stats["lane_deferrals"] += 1
            continue
        results[i] = predecode._clone_data(cached, programs[i])
    return results


def _run_lanes(programs, images, lanes, max_cycles, results):
    """Execute the selected lanes in lockstep; fills ``results`` and the
    per-image result caches (deferred lanes cache the deferral marker)."""
    k = len(lanes)
    imgs = [images[i] for i in lanes]

    # concatenated per-lane tables: lookup (pc>>2 -> local slot) and the
    # struct-of-arrays slot columns, with per-lane base offsets
    lookups, col_parts = [], {}
    names = ("op", "rd", "ra", "rb", "aux", "aux2", "bmask",
             "b_is_reg", "is_ctrl")
    for name in names:
        col_parts[name] = []
    nwords = np.empty(k, dtype=np.int64)
    lookup_base = np.empty(k, dtype=np.int64)
    slot_base = np.empty(k, dtype=np.int64)
    lpos, spos = 0, 0
    for j, image in enumerate(imgs):
        cols = image.lockstep_columns()
        lookups.append(cols["lookup"])
        nwords[j] = len(cols["lookup"])
        lookup_base[j] = lpos
        slot_base[j] = spos
        lpos += len(cols["lookup"])
        spos += len(cols["op"])
        for name in names:
            col_parts[name].append(cols[name])
    lookup_concat = np.concatenate(lookups)
    opc = np.concatenate(col_parts["op"])
    rdc = np.concatenate(col_parts["rd"])
    rac = np.concatenate(col_parts["ra"])
    rbc = np.concatenate(col_parts["rb"])
    auxc = np.concatenate(col_parts["aux"])
    aux2c = np.concatenate(col_parts["aux2"])
    bmaskc = np.concatenate(col_parts["bmask"])
    bregc = np.concatenate(col_parts["b_is_reg"])
    ctrlc = np.concatenate(col_parts["is_ctrl"])

    # lane state (indexed by batch position j)
    regs = np.zeros((k, 32), dtype=np.int64)
    flag = np.zeros(k, dtype=bool)
    carry = np.zeros(k, dtype=bool)
    pc = np.array([programs[i].entry for i in lanes], dtype=np.int64)
    pending = np.zeros(k, dtype=np.int64)
    in_ds = np.zeros(k, dtype=bool)
    alive = np.ones(k, dtype=bool)
    finished = np.zeros(k, dtype=bool)
    retired_count = np.zeros(k, dtype=np.int64)
    memories = [image.memory_proto.copy() for image in imgs]
    store_words = [set() for _ in range(k)]

    # time-major recording; re-sorted per lane at packaging
    rec_lane, rec_slot, rec_a, rec_b = [], [], [], []
    ctrl_lane, ctrl_idx, ctrl_tgt = [], [], []

    def evict(batch_positions):
        alive[batch_positions] = False

    steps = 0
    while True:
        act = np.nonzero(alive)[0]
        if not len(act):
            break
        if steps >= max_cycles:
            evict(act)            # budget: the object ISS raises for these
            break

        # -- fetch: pc -> local slot index, with every deferral condition
        lpc = pc[act]
        word = lpc >> 2
        ok = ((lpc & 3) == 0) & (word < nwords[act]) & (word >= 0)
        if not ok.all():
            evict(act[~ok])
            act, lpc, word = act[ok], lpc[ok], word[ok]
            if not len(act):
                continue
        slot = lookup_concat[lookup_base[act] + word]
        ok = slot >= 0
        if not ok.all():
            evict(act[~ok])
            act, lpc, slot = act[ok], lpc[ok], slot[ok]
            if not len(act):
                continue
        gs = slot_base[act] + slot
        op = opc[gs]
        ctrl = ctrlc[gs]
        ok = (op >= 0) & ~(in_ds[act] & ctrl)
        if not ok.all():
            evict(act[~ok])
            act, lpc, slot = act[ok], lpc[ok], slot[ok]
            gs, op, ctrl = gs[ok], op[ok], ctrl[ok]
            if not len(act):
                continue

        # -- operand read and retirement record
        aux = auxc[gs]
        aux2 = aux2c[gs]
        rd = rdc[gs]
        a = regs[act, rac[gs]]
        b = np.where(bregc[gs], regs[act, rbc[gs]], bmaskc[gs])
        rec_lane.append(act)
        rec_slot.append(slot)
        rec_a.append(a)
        rec_b.append(b)
        retired_count[act] += 1
        steps += 1
        _stats["steps"] += len(act)

        # -- execute, grouped by dispatch id
        m = len(act)
        taken = np.zeros(m, dtype=bool)
        target = np.zeros(m, dtype=np.int64)
        dropped = np.zeros(m, dtype=bool)
        halted_now = op == OP_HALT

        for code in np.unique(op).tolist():
            sel = np.nonzero(op == code)[0]
            la, lb = a[sel], b[sel]
            val = None
            if code == OP_ADDI or code == OP_ADD:
                rhs = aux[sel] if code == OP_ADDI else lb
                total = la + rhs
                carry[act[sel]] = total > _MASK
                val = total & _MASK
            elif code == OP_ADDC:
                total = la + lb + carry[act[sel]]
                carry[act[sel]] = total > _MASK
                val = total & _MASK
            elif code == OP_SUB:
                total = la - lb
                carry[act[sel]] = total < 0
                val = total & _MASK
            elif code == OP_SF or code == OP_SFI:
                sf_aux = aux[sel]
                signed = (sf_aux & 8) != 0
                lhs = np.where(signed, _signed(la), la)
                if code == OP_SF:
                    rhs = np.where(signed, _signed(lb), lb)
                else:
                    rhs = aux2[sel]       # pre-converted at decode
                cond = sf_aux & 7
                flag[act[sel]] = np.select(
                    [cond == 0, cond == 1, cond == 2, cond == 3, cond == 4],
                    [lhs == rhs, lhs != rhs, lhs > rhs, lhs >= rhs,
                     lhs < rhs],
                    default=lhs <= rhs,
                )
            elif code == OP_BF or code == OP_BNF:
                branch_flag = flag[act[sel]]
                hit = branch_flag if code == OP_BF else ~branch_flag
                taken[sel] = hit
                target[sel] = aux[sel]
                ctrl_lane.append(act[sel])
                ctrl_idx.append(retired_count[act[sel]] - 1)
                ctrl_tgt.append(np.where(hit, aux[sel], -1))
            elif code == OP_J or code == OP_JAL:
                taken[sel] = True
                target[sel] = aux[sel]
                ctrl_lane.append(act[sel])
                ctrl_idx.append(retired_count[act[sel]] - 1)
                ctrl_tgt.append(aux[sel])
                if code == OP_JAL:
                    regs[act[sel], REG_LINK] = aux2[sel]
            elif code == OP_JR or code == OP_JALR:
                aligned = (lb & 3) == 0
                if not aligned.all():
                    bad = sel[~aligned]
                    evict(act[bad])
                    dropped[bad] = True
                    sel, lb = sel[aligned], lb[aligned]
                    if not len(sel):
                        continue
                taken[sel] = True
                target[sel] = lb
                ctrl_lane.append(act[sel])
                ctrl_idx.append(retired_count[act[sel]] - 1)
                ctrl_tgt.append(lb)
                if code == OP_JALR:
                    regs[act[sel], REG_LINK] = aux2c[gs[sel]]
            elif code == OP_ANDI:
                val = la & aux[sel]
            elif code == OP_AND:
                val = la & lb
            elif code == OP_ORI:
                val = la | aux[sel]
            elif code == OP_OR:
                val = la | lb
            elif code == OP_XORI:
                val = la ^ aux[sel]
            elif code == OP_XOR:
                val = la ^ lb
            elif code == OP_CMOV:
                val = np.where(flag[act[sel]], la, lb)
            elif code == OP_SLLI or code == OP_SLL:
                amount = aux[sel] if code == OP_SLLI else lb & 0x1F
                val = (
                    (la.astype(np.uint64) << amount.astype(np.uint64))
                    & np.uint64(0xFFFFFFFF)
                ).astype(np.int64)
            elif code == OP_SRLI or code == OP_SRL:
                amount = aux[sel] if code == OP_SRLI else lb & 0x1F
                val = la >> amount
            elif code == OP_SRAI or code == OP_SRA:
                amount = aux[sel] if code == OP_SRAI else lb & 0x1F
                val = (_signed(la) >> amount) & _MASK
            elif code == OP_RORI or code == OP_ROR:
                amount = (
                    aux[sel] if code == OP_RORI else lb & 0x1F
                ).astype(np.uint64)
                ua = la.astype(np.uint64)
                val = (
                    ((ua >> amount) | (ua << (np.uint64(32) - amount)))
                    & np.uint64(0xFFFFFFFF)
                ).astype(np.int64)
            elif code == OP_MULI or code == OP_MUL:
                rhs = aux[sel] if code == OP_MULI else lb
                val = (
                    (la.astype(np.uint64) * rhs.astype(np.uint64))
                    & np.uint64(0xFFFFFFFF)
                ).astype(np.int64)
            elif code == OP_DIV:
                lhs, rhs = _signed(la), _signed(lb)
                safe = np.where(rhs == 0, 1, rhs)
                quotient = np.abs(lhs) // np.abs(safe)
                quotient = np.where(
                    (lhs < 0) != (safe < 0), -quotient, quotient
                )
                val = np.where(lb == 0, _MASK, quotient & _MASK)
            elif code == OP_DIVU:
                safe = np.where(lb == 0, 1, lb)
                val = np.where(lb == 0, _MASK, la // safe)
            elif code == OP_MOVHI:
                val = aux[sel]
            elif code == OP_EXTHS:
                half = la & 0xFFFF
                val = np.where(
                    half & 0x8000, (half - 0x10000) & _MASK, half
                )
            elif code == OP_EXTBS:
                byte = la & 0xFF
                val = np.where(byte & 0x80, (byte - 0x100) & _MASK, byte)
            elif code == OP_EXTHZ:
                val = la & 0xFFFF
            elif code == OP_EXTBZ:
                val = la & 0xFF
            elif code == OP_FF1:
                lowbit = la & -la
                val = np.where(
                    la == 0,
                    0,
                    np.log2(np.maximum(lowbit, 1).astype(np.float64))
                    .astype(np.int64) + 1,
                )
            elif code in _LOAD_STORE_OPS:
                # rare; scalar per lane against each lane's own memory
                for pos in sel.tolist():
                    j = int(act[pos])
                    address = (int(a[pos]) + int(aux[pos])) & 0xFFFFFFFF
                    memory = memories[j]
                    words = store_words[j]
                    dest = int(rd[pos])
                    if code == OP_LWZ:
                        if address & 3:
                            evict([j]); dropped[pos] = True; continue
                        if dest:
                            regs[j, dest] = memory.load(address, 4)
                    elif code == OP_LBZ:
                        if dest:
                            regs[j, dest] = memory.load(address, 1)
                    elif code == OP_LBS:
                        byte = memory.load(address, 1)
                        if dest:
                            regs[j, dest] = (
                                byte - 0x100 if byte & 0x80 else byte
                            ) & 0xFFFFFFFF
                    elif code == OP_LHZ:
                        if address & 1:
                            evict([j]); dropped[pos] = True; continue
                        if dest:
                            regs[j, dest] = memory.load(address, 2)
                    elif code == OP_LHS:
                        if address & 1:
                            evict([j]); dropped[pos] = True; continue
                        half = memory.load(address, 2)
                        if dest:
                            regs[j, dest] = (
                                half - 0x10000 if half & 0x8000 else half
                            ) & 0xFFFFFFFF
                    elif code == OP_SW:
                        if address & 3:
                            evict([j]); dropped[pos] = True; continue
                        memory.store(address, int(b[pos]), 4)
                        words.add(address)
                    elif code == OP_SB:
                        memory.store(address, int(b[pos]) & 0xFF, 1)
                        words.add(address & ~3)
                    else:                 # OP_SH
                        if address & 1:
                            evict([j]); dropped[pos] = True; continue
                        memory.store(address, int(b[pos]) & 0xFFFF, 2)
                        words.add(address & ~3)
            # OP_NOP and OP_HALT execute nothing

            if val is not None:
                writes = sel[np.asarray(rd[sel] != 0)]
                if len(writes):
                    regs[act[writes], rd[writes]] = val[
                        np.nonzero(rd[sel] != 0)[0]
                    ]

        # -- program-counter update with delay-slot semantics.  Halt lanes
        # keep their pc (matching the scalar engines); dropped lanes are
        # already evicted and their state is discarded.
        live = ~halted_now & ~dropped
        if halted_now.any():
            done = act[halted_now & ~dropped]
            finished[done] = True
            alive[done] = False
        if live.any():
            upd = np.nonzero(live)[0]
            lanes_upd = act[upd]
            seq = lpc[upd] + 4
            follow = np.where(in_ds[lanes_upd], pending[lanes_upd], seq)
            pc[lanes_upd] = np.where(ctrl[upd], seq, follow)
            in_ds[lanes_upd] = ctrl[upd] & taken[upd]
            took = upd[taken[upd]]
            pending[act[took]] = target[took]

    # -- package each finished lane into IssData (time-major records are
    # re-sorted per lane; the stable sort preserves step order)
    if rec_lane:
        all_lane = np.concatenate(rec_lane)
        all_slot = np.concatenate(rec_slot)
        all_a = np.concatenate(rec_a)
        all_b = np.concatenate(rec_b)
        order = np.argsort(all_lane, kind="stable")
        all_lane = all_lane[order]
        all_slot = all_slot[order]
        all_a = all_a[order]
        all_b = all_b[order]
        lane_starts = np.searchsorted(all_lane, np.arange(k))
        lane_ends = np.searchsorted(all_lane, np.arange(k), side="right")
    if ctrl_lane:
        call_lane = np.concatenate(ctrl_lane)
        call_idx = np.concatenate(ctrl_idx)
        call_tgt = np.concatenate(ctrl_tgt)
        corder = np.argsort(call_lane, kind="stable")
        call_lane = call_lane[corder]
        call_idx = call_idx[corder]
        call_tgt = call_tgt[corder]
        ctrl_starts = np.searchsorted(call_lane, np.arange(k))
        ctrl_ends = np.searchsorted(call_lane, np.arange(k), side="right")

    for j, i in enumerate(lanes):
        image = imgs[j]
        if not finished[j]:
            _stats["lane_deferrals"] += 1
            image.iss_results[max_cycles] = predecode._DEFERRED
            continue
        lo, hi = int(lane_starts[j]), int(lane_ends[j])
        if ctrl_lane:
            clo, chi = int(ctrl_starts[j]), int(ctrl_ends[j])
            ctrl_rows = np.stack(
                [call_idx[clo:chi], call_tgt[clo:chi]], axis=1
            )
        else:
            ctrl_rows = np.empty((0, 2), dtype=np.int64)
        data = predecode._package(
            image,
            programs[i],
            memories[j],
            [int(value) for value in regs[j]],
            bool(flag[j]),
            bool(carry[j]),
            int(pc[j]),
            all_slot[lo:hi],
            all_a[lo:hi],
            all_b[lo:hi],
            ctrl_rows,
            store_words[j],
        )
        image.iss_results[max_cycles] = data
        results[i] = predecode._clone_data(data, programs[i])


def simulate_batch(programs, div_latency=None, max_cycles=DEFAULT_MAX_CYCLES,
                   spec=None):
    """Batched pipeline simulation: lockstep ISS + per-lane reconstruction.

    Returns one :class:`~repro.sim.vector.VectorPipelineRun` per program,
    or ``None`` for programs that need the scalar engine — the same
    contract as :func:`repro.sim.vector.simulate`, applied element-wise.
    Deferred lanes re-run through ``vector.simulate`` (which owns every
    rare path and raises exactly where the scalar engines would).

    The architectural ISS pass is spec-invariant, so one lockstep batch
    serves every :class:`~repro.sim.spec.PipelineSpec`; ``spec`` only
    parameterises the per-lane cycle-timing reconstruction.
    """
    from repro.sim import vector

    batch = collect_batch(programs, max_cycles=max_cycles)
    runs = []
    for program, data in zip(programs, batch):
        if data is None:
            runs.append(
                vector.simulate(
                    program, div_latency=div_latency, max_cycles=max_cycles,
                    spec=spec,
                )
            )
        else:
            runs.append(
                vector.reconstruct(
                    program, data, div_latency=div_latency,
                    max_cycles=max_cycles, spec=spec,
                )
            )
    return runs
