"""Functional (architectural) instruction-set simulator.

Executes one instruction per step with correct OR1K delay-slot behaviour.
This is the golden reference model: the cycle-accurate pipeline must retire
exactly the same architectural state, which the test suite checks by
co-simulation on every workload.

Halt convention: ``l.nop 0x1`` stops the simulation (the mor1kx simulation
environment uses the same idiom).
"""

from repro.isa.encoding import decode
from repro.isa.opcodes import InstructionKind
from repro.isa.registers import REG_LINK
from repro.isa.semantics import compute, load_extract
from repro.sim.state import ArchState

#: ``l.nop`` immediate that terminates simulation.
HALT_NOP_CODE = 0x1

#: Hard cap on executed instructions, to catch runaway programs in tests.
DEFAULT_MAX_STEPS = 20_000_000


class SimulationError(RuntimeError):
    """Raised for invalid execution (bad fetch, control in delay slot...)."""


class FunctionalSimulator:
    """Architectural ISS over a program image.

    Parameters
    ----------
    program:
        :class:`~repro.asm.program.Program` to execute.
    memory:
        Optional pre-populated data memory; by default the program image is
        loaded into a fresh memory (unified address space, like the paper's
        tightly-coupled instruction/data SRAM pair mapped in one space).
    """

    def __init__(self, program, memory=None, observer=None):
        # lazy import: predecode imports this module for SimulationError
        from repro.sim.predecode import image_for

        self.program = program
        self._image = image_for(program)
        if memory is not None:
            self.memory = memory
        else:
            # the image's pristine memory snapshot replaces a per-word
            # (per-byte, really) Python store loop on every construction
            self.memory = self._image.memory_proto.copy()
        self.state = ArchState(entry=program.entry)
        self.halted = False
        self.retired = []            # (pc, Instruction) in retirement order
        self._decode_cache = {}      # memory-resident (non-text) words only
        self._pending_target = None  # branch target to apply after the slot
        self._in_delay_slot = False
        #: Optional ``observer(pc, instruction, a, b, result)`` called once
        #: per retired instruction with the operand values read before
        #: execution — the hook the vectorized pipeline engine uses to
        #: collect per-instruction arrays without duplicating the ISS
        #: semantics.
        self.observer = observer

    # -- fetch ----------------------------------------------------------------

    def fetch(self, address):
        if address % 4:
            raise SimulationError(f"misaligned fetch at {address:#010x}")
        instruction = self._image.instruction_at(address)
        if instruction is not None:
            return instruction
        # text added to the program after the image was built still wins
        # over memory content, exactly as before the shared image
        instruction = self.program.instructions.get(address)
        if instruction is not None:
            return instruction
        cached = self._decode_cache.get(address)
        if cached is not None:
            return cached
        word = self.memory.load_word(address)
        try:
            instruction = decode(word)
        except Exception as err:
            raise SimulationError(
                f"cannot decode word {word:#010x} at {address:#010x}: {err}"
            ) from err
        self._decode_cache[address] = instruction
        return instruction

    # -- execution --------------------------------------------------------------

    def step(self):
        """Execute one instruction; returns the retired Instruction."""
        if self.halted:
            raise SimulationError("simulator is halted")
        state = self.state
        pc = state.pc
        instruction = self.fetch(pc)

        if self._in_delay_slot and instruction.is_control:
            raise SimulationError(
                f"control-transfer instruction in delay slot at {pc:#010x}"
            )

        a = state.read_reg(instruction.ra)
        b = state.read_reg(instruction.rb)
        result = compute(instruction, a, b, state.flag, state.carry, pc)
        if self.observer is not None:
            self.observer(pc, instruction, a, b, result)
        self._apply(instruction, result)
        self.retired.append((pc, instruction))
        state.instret += 1

        if (
            instruction.mnemonic == "l.nop"
            and instruction.imm == HALT_NOP_CODE
        ):
            self.halted = True
            return instruction

        # -- program counter update with delay-slot semantics ---------------
        if self._in_delay_slot:
            state.pc = self._pending_target
            self._pending_target = None
            self._in_delay_slot = False
        elif instruction.is_control and result.branch_taken:
            self._pending_target = result.branch_target
            self._in_delay_slot = True
            state.pc = pc + 4
        else:
            state.pc = pc + 4
        return instruction

    def _apply(self, instruction, result):
        state = self.state
        kind = instruction.kind
        if kind == InstructionKind.LOAD:
            raw = self.memory.load(result.mem_addr, result.mem_size)
            state.write_reg(
                instruction.rd, load_extract(instruction.mnemonic, raw)
            )
        elif kind == InstructionKind.STORE:
            self.memory.store(result.mem_addr, result.store_value,
                              result.mem_size)
        elif result.value is not None:
            state.write_reg(instruction.rd, result.value)
        if result.link_value is not None:
            state.write_reg(REG_LINK, result.link_value)
        if result.flag is not None:
            state.flag = result.flag
        if result.carry is not None:
            state.carry = result.carry

    def run(self, max_steps=DEFAULT_MAX_STEPS):
        """Run until halt; returns the number of retired instructions."""
        steps = 0
        while not self.halted:
            if steps >= max_steps:
                raise SimulationError(
                    f"exceeded {max_steps} steps without halting "
                    f"(pc={self.state.pc:#010x})"
                )
            self.step()
            steps += 1
        return steps

    def retired_trace(self):
        """The program trace L[t] as a list of Instructions."""
        return [instruction for _, instruction in self.retired]


def run_program(program, max_steps=DEFAULT_MAX_STEPS):
    """Convenience helper: run a program functionally, return the simulator."""
    simulator = FunctionalSimulator(program)
    simulator.run(max_steps=max_steps)
    return simulator
