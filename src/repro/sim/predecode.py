"""Pre-decoded program images and a dispatch-table ISS fast path.

The object-layer :class:`~repro.sim.iss.FunctionalSimulator` pays for every
retired instruction: a ``spec_for`` dict lookup per ``Instruction`` property,
a :func:`~repro.isa.semantics.compute` call with its mnemonic string
comparisons, and a ``ComputeResult`` allocation.  Profiling a cold sweep puts
that object layer at ~65 % of ``vector.simulate``.

This module removes it from the hot path:

- :class:`DecodedImage` decodes a program **once** into a dense
  struct-of-arrays image: per text word a dispatch id, register indices,
  pre-substituted immediates (``l.andi`` masks, ``l.xori`` sign-extension,
  shift amounts) and — because the fetch address is known at decode time —
  precomputed branch targets and link values.  Metadata needed by the
  vectorized pipeline reconstruction (timing-class id, kind code, hazard
  ports) is stored as NumPy columns, gathered per run by fancy indexing.
  Images live in a per-program-content LRU shared by every simulator
  instance, replacing the per-instance decode caches.

- :func:`collect` is a dispatch-table step loop over the image: plain int
  compares on the dispatch id, list-indexed register file, no ``isa``
  object attribute ever touched.  It produces the exact
  :class:`IssData` that ``vector._reconstruct`` consumes.  Any condition
  the object ISS would turn into an error or that the image cannot
  represent (fetch outside the decoded text, misaligned access, control in
  a delay slot, budget overrun) makes :func:`collect` return ``None`` and
  the caller re-runs the object-layer ISS, which owns all rare paths —
  bit-identity by construction.

The same image feeds :mod:`repro.sim.lockstep`, which executes many
programs' images as batched NumPy arrays.
"""

import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.isa.opcodes import SPECS, InstructionKind, KIND_CODE
from repro.isa.registers import REG_LINK
from repro.obs.trace import span as obs_span
from repro.sim.memory import Memory
from repro.sim.state import ArchState
from repro.utils.bitops import sign_extend, to_signed32

_MASK = 0xFFFFFFFF
_HALT_NOP_CODE = 0x1          # matches repro.sim.iss.HALT_NOP_CODE

#: Largest text word index served by the dense address -> slot table.
_MAX_DENSE_WORDS = 1 << 20

# -- dispatch ids -------------------------------------------------------------
# Grouped so the step loop can order its chain by dynamic frequency; the ids
# themselves carry no meaning beyond identity.
OP_ADDI = 0
OP_ADD = 1
OP_ADDC = 2
OP_SUB = 3
OP_ANDI = 4
OP_AND = 5
OP_ORI = 6
OP_OR = 7
OP_XORI = 8
OP_XOR = 9
OP_CMOV = 10
OP_SLLI = 11
OP_SLL = 12
OP_SRLI = 13
OP_SRL = 14
OP_SRAI = 15
OP_SRA = 16
OP_RORI = 17
OP_ROR = 18
OP_MULI = 19
OP_MUL = 20                   # l.mul and l.mulu: identical low-32 product
OP_DIV = 21
OP_DIVU = 22
OP_MOVHI = 23
OP_EXTHS = 24
OP_EXTBS = 25
OP_EXTHZ = 26
OP_EXTBZ = 27
OP_FF1 = 28
OP_SF = 29                    # register compare; aux = cond | signed << 3
OP_SFI = 30                   # immediate compare; aux2 = converted rhs
OP_LWZ = 31
OP_LBZ = 32
OP_LBS = 33
OP_LHZ = 34
OP_LHS = 35
OP_SW = 36
OP_SB = 37
OP_SH = 38
OP_J = 39
OP_JAL = 40
OP_JR = 41
OP_JALR = 42
OP_BF = 43
OP_BNF = 44
OP_NOP = 45
OP_HALT = 46

_SF_CONDS = {"eq": 0, "ne": 1, "gt": 2, "ge": 3, "lt": 4, "le": 5}

_ALU_OPS = {
    "l.add": OP_ADD, "l.addc": OP_ADDC, "l.sub": OP_SUB, "l.and": OP_AND,
    "l.or": OP_OR, "l.xor": OP_XOR, "l.cmov": OP_CMOV,
}
_SHIFT_OPS = {
    "l.sll": OP_SLL, "l.slli": OP_SLLI, "l.srl": OP_SRL, "l.srli": OP_SRLI,
    "l.sra": OP_SRA, "l.srai": OP_SRAI, "l.ror": OP_ROR, "l.rori": OP_RORI,
}
_MOVE_OPS = {
    "l.exths": OP_EXTHS, "l.extbs": OP_EXTBS, "l.exthz": OP_EXTHZ,
    "l.extbz": OP_EXTBZ, "l.ff1": OP_FF1,
}
_LOAD_OPS = {
    "l.lwz": OP_LWZ, "l.lbz": OP_LBZ, "l.lbs": OP_LBS,
    "l.lhz": OP_LHZ, "l.lhs": OP_LHS,
}
_STORE_OPS = {"l.sw": OP_SW, "l.sb": OP_SB, "l.sh": OP_SH}


def _encode_slot(pc, instruction, spec):
    """Canonical micro-op ``(op, rd, ra, rb, aux, aux2, bmask, is_ctrl)``.

    ``aux``/``aux2`` hold pre-substituted operands (effective immediates,
    branch targets, link values).  ``bmask`` is the static EX-datapath ``b``
    operand (``imm & 0xFFFFFFFF``) for immediate forms and ``None`` when the
    operand comes from ``rB`` at run time.  Returns ``None`` for mnemonics
    the table does not cover (their fetches defer to the object ISS).
    """
    mnemonic = instruction.mnemonic
    kind = spec.kind
    rd, ra, rb, imm = instruction.rd, instruction.ra, instruction.rb, \
        instruction.imm
    aux = 0
    aux2 = 0
    if kind == InstructionKind.NOP:
        op = OP_HALT if imm == _HALT_NOP_CODE else OP_NOP
    elif kind == InstructionKind.ALU:
        if mnemonic == "l.addi":
            op, aux = OP_ADDI, imm & _MASK
        elif mnemonic == "l.andi":
            op, aux = OP_ANDI, imm & 0xFFFF
        elif mnemonic == "l.ori":
            op, aux = OP_ORI, imm & 0xFFFF
        elif mnemonic == "l.xori":
            op, aux = OP_XORI, sign_extend(imm, 16) & _MASK
        else:
            op = _ALU_OPS.get(mnemonic)
            if op is None:
                return None
    elif kind == InstructionKind.SHIFT:
        op = _SHIFT_OPS.get(mnemonic)
        if op is None:
            return None
        if mnemonic.endswith("i"):
            aux = imm & 0x1F
    elif kind == InstructionKind.MUL:
        if mnemonic == "l.muli":
            op, aux = OP_MULI, imm & _MASK
        else:
            op = OP_MUL
    elif kind == InstructionKind.DIV:
        op = OP_DIV if mnemonic == "l.div" else OP_DIVU
    elif kind == InstructionKind.MOVE:
        if mnemonic == "l.movhi":
            op, aux = OP_MOVHI, ((imm & 0xFFFF) << 16) & _MASK
        else:
            op = _MOVE_OPS.get(mnemonic)
            if op is None:
                return None
    elif kind == InstructionKind.SETFLAG:
        base = mnemonic.replace("l.sf", "")
        immediate = spec.fmt.name == "SETFLAG_IMM"
        if immediate and base.endswith("i"):
            base = base[:-1]
        signed = base.endswith("s") or base in ("eq", "ne")
        cond = _SF_CONDS.get(base if base in ("eq", "ne") else base[:-1])
        if cond is None:
            return None
        aux = cond | (8 if signed else 0)
        if immediate:
            op = OP_SFI
            aux2 = to_signed32(imm) if signed else imm & _MASK
        else:
            op = OP_SF
    elif kind == InstructionKind.LOAD:
        op = _LOAD_OPS.get(mnemonic)
        if op is None:
            return None
        aux = imm
    elif kind == InstructionKind.STORE:
        op = _STORE_OPS.get(mnemonic)
        if op is None:
            return None
        aux = imm
    elif kind == InstructionKind.JUMP:
        op = OP_JAL if mnemonic == "l.jal" else OP_J
        aux = (pc + (imm << 2)) & _MASK
        aux2 = (pc + 8) & _MASK
    elif kind == InstructionKind.JUMP_REG:
        op = OP_JALR if mnemonic == "l.jalr" else OP_JR
        aux2 = (pc + 8) & _MASK
    elif kind == InstructionKind.BRANCH:
        op = OP_BF if mnemonic == "l.bf" else OP_BNF
        aux = (pc + (imm << 2)) & _MASK
    else:
        return None
    bmask = None if spec.reads_rb else imm & _MASK
    return (op, rd, ra, rb, aux, aux2, bmask, spec.is_control)


class DecodedImage:
    """Struct-of-arrays decode of one program's text section.

    ``slots`` holds one micro-op tuple per text word (``None`` when the
    mnemonic is outside the dispatch table); ``lookup`` maps ``pc >> 2`` to
    the slot index (``-1`` for data words).  The NumPy metadata columns are
    indexed by slot and gathered per run; timing classes are interned in
    decode (address) order — consumers that need a canonical order re-intern
    (``compile_vector_run`` does so in first-encounter row-major order).
    """

    __slots__ = (
        "addrs", "instrs", "slots", "lookup", "sparse", "fast_ok",
        "class_names", "np_pc", "np_cls", "np_kind", "np_dest", "np_src",
        "memory_proto", "_lockstep_cols", "iss_results", "crit_cache",
    )

    def __init__(self, program):
        addrs = sorted(program.instructions)
        self.addrs = addrs
        self.instrs = [program.instructions[address] for address in addrs]
        count = len(addrs)
        class_names = []
        intern = {}
        slots = []
        np_cls = np.full(count, -1, dtype=np.int64)
        np_kind = np.full(count, -1, dtype=np.int64)
        np_dest = np.full(count, -1, dtype=np.int64)
        np_src = np.zeros(count, dtype=np.int64)
        for index, (address, instruction) in enumerate(
            zip(addrs, self.instrs)
        ):
            spec = SPECS.get(instruction.mnemonic)
            if spec is None:
                slots.append(None)
                continue
            cls = spec.timing_class
            cls_id = intern.get(cls)
            if cls_id is None:
                cls_id = intern[cls] = len(class_names)
                class_names.append(cls)
            np_cls[index] = cls_id
            np_kind[index] = KIND_CODE[spec.kind]
            if spec.writes_rd:
                np_dest[index] = instruction.rd
            source_mask = 0
            if spec.reads_ra:
                source_mask |= 1 << instruction.ra
            if spec.reads_rb:
                source_mask |= 1 << instruction.rb
            np_src[index] = source_mask
            slots.append(_encode_slot(address, instruction, spec))
        self.slots = slots
        self.class_names = class_names
        self.np_pc = np.array(addrs, dtype=np.int64)
        self.np_cls = np_cls
        self.np_kind = np_kind
        self.np_dest = np_dest
        self.np_src = np_src
        if count and 0 <= addrs[0] and (addrs[-1] >> 2) < _MAX_DENSE_WORDS:
            lookup = [-1] * ((addrs[-1] >> 2) + 1)
            for index, address in enumerate(addrs):
                lookup[address >> 2] = index
            self.lookup = lookup
            self.sparse = None
            self.fast_ok = True
        else:
            self.lookup = None
            self.sparse = dict(zip(addrs, range(count)))
            self.fast_ok = False
        self.memory_proto = Memory("dmem")
        program.load_into(self.memory_proto)
        self._lockstep_cols = None
        self.iss_results = {}     # max_cycles -> IssData | _DEFERRED
        self.crit_cache = {}      # EX criticality arrays (dta.compiled)

    def instruction_at(self, address):
        """Text instruction at ``address``, or ``None`` for non-text words."""
        lookup = self.lookup
        if lookup is not None:
            word = address >> 2
            if 0 <= word < len(lookup):
                index = lookup[word]
                if index >= 0:
                    return self.instrs[index]
            return None
        index = self.sparse.get(address, -1)
        return self.instrs[index] if index >= 0 else None

    def lockstep_columns(self):
        """Per-slot NumPy columns for the batched lockstep engine."""
        if self._lockstep_cols is None:
            none_slot = (-1, 0, 0, 0, 0, 0, 0, False)
            rows = [none_slot if slot is None else slot
                    for slot in self.slots]
            if rows:
                op, rd, ra, rb, aux, aux2, bmask, is_ctrl = zip(*rows)
            else:
                op = rd = ra = rb = aux = aux2 = bmask = is_ctrl = ()
            cols = {
                "op": np.array(op, dtype=np.int64),
                "rd": np.array(rd, dtype=np.int64),
                "ra": np.array(ra, dtype=np.int64),
                "rb": np.array(rb, dtype=np.int64),
                "aux": np.array(aux, dtype=np.int64),
                "aux2": np.array(aux2, dtype=np.int64),
                "bmask": np.array(
                    [0 if value is None else value for value in bmask],
                    dtype=np.int64,
                ),
                "b_is_reg": np.array(
                    [value is None for value in bmask], dtype=bool
                ),
                "is_ctrl": np.array(is_ctrl, dtype=bool),
            }
            cols["lookup"] = (
                np.array(self.lookup, dtype=np.int64)
                if self.lookup is not None
                else np.empty(0, dtype=np.int64)
            )
            self._lockstep_cols = cols
        return self._lockstep_cols


@dataclass
class IssData:
    """One architectural run in the columnar form ``vector._reconstruct``
    consumes.  ``class_names`` is owned by the receiver (victim/drain
    interning appends to it)."""

    state: ArchState
    memory: Memory
    retired: list
    pcs: np.ndarray          # int64, retired program counters
    instrs: list             # Instruction per retired slot
    a_vals: np.ndarray       # uint64, rA operand values
    b_vals: np.ndarray       # uint64, effective EX b operand
    taken: np.ndarray        # bool, control-transfer outcome
    targets: np.ndarray      # int64, target when taken else 0
    cls: np.ndarray          # int64, timing-class ids (into class_names)
    kind: np.ndarray         # int64, KIND_CODE values
    dest: np.ndarray         # int64, written register or -1
    src: np.ndarray          # int64, source-register bit mask
    store_words: set
    class_names: list


# -- the shared per-content image LRU ----------------------------------------

_images = OrderedDict()
_IMAGE_CAPACITY = 4096

_stats = {
    "decode_seconds": 0.0,
    "iss_seconds": 0.0,
    "images_built": 0,
    "image_hits": 0,
    "fast_runs": 0,
    "deferred_runs": 0,
    "iss_hits": 0,
}

#: Sentinel cached when a program's fast pass deferred: re-running the
#: dispatch loop would defer again, so the caller goes straight to the
#: object-layer ISS.
_DEFERRED = object()


def _clone_data(data, program):
    """Fresh :class:`IssData` view of a cached architectural result.

    The ISS pass is a pure function of ``(program content, max_cycles)``,
    so results are cached on the image; each caller gets its own copies of
    the parts the downstream pipeline mutates or keeps (final memory,
    architectural state, the intern list the reconstruction appends to).
    The immutable columns — retired arrays, instruction list, store set —
    are shared read-only.
    """
    state = ArchState(entry=program.entry)
    state.regs = list(data.state.regs)
    state.flag = data.state.flag
    state.carry = data.state.carry
    state.pc = data.state.pc
    state.instret = data.state.instret
    return IssData(
        state=state,
        memory=data.memory.copy(),
        retired=data.retired,
        pcs=data.pcs,
        instrs=data.instrs,
        a_vals=data.a_vals,
        b_vals=data.b_vals,
        taken=data.taken,
        targets=data.targets,
        cls=data.cls,
        kind=data.kind,
        dest=data.dest,
        src=data.src,
        store_words=data.store_words,
        class_names=list(data.class_names),
    )


def stats():
    """Copy of the decode/execution counters (see :func:`reset_stats`)."""
    return dict(_stats)


def reset_stats():
    for key in _stats:
        _stats[key] = 0.0 if key.endswith("seconds") else 0


def clear_images():
    """Drop every cached image (tests / memory pressure)."""
    _images.clear()


def is_image_cached(program):
    """Whether the image cache currently holds ``program``'s decode."""
    return _image_key(program) in _images


def discard_image(program):
    """Evict one decoded image (no-op when absent); returns whether an
    entry was dropped.  The streaming engine uses this to keep unbounded
    program streams at O(1) memory — a decoded image pins every
    instruction object plus the ISS result arrays for the program."""
    return _images.pop(_image_key(program), None) is not None


def _image_key(program):
    return (
        program.entry,
        tuple(sorted(program.words.items())),
        tuple(sorted(program.instructions)),
    )


def image_for(program):
    """The shared :class:`DecodedImage` for ``program``, decoding at most
    once per program content."""
    key = _image_key(program)
    image = _images.get(key)
    if image is not None:
        _images.move_to_end(key)
        _stats["image_hits"] += 1
        return image
    start = time.perf_counter()
    with obs_span("iss.decode", program=program.name):
        image = DecodedImage(program)
    _stats["decode_seconds"] += time.perf_counter() - start
    _stats["images_built"] += 1
    _images[key] = image
    while len(_images) > _IMAGE_CAPACITY:
        _images.popitem(last=False)
    return image


# -- the dispatch-table step loop ---------------------------------------------


def collect(program, max_cycles):
    """One fast architectural pass; ``None`` defers to the object-layer ISS.

    The deferral cases (fetch outside the decoded text, misaligned access,
    control transfer in a delay slot, step budget exceeded, uncovered
    mnemonic) are exactly the paths where the object ISS raises or where the
    image cannot answer — the caller re-runs
    ``FunctionalSimulator`` which reproduces the behaviour bit-exactly.

    Results are memoised per ``(program content, max_cycles)`` on the
    shared image: the architectural pass is deterministic, so repeated
    evaluations of the same kernel (characterisation then every config of
    a sweep) execute once and clone the columns (:func:`_clone_data`).
    """
    image = image_for(program)
    if not image.fast_ok:
        _stats["deferred_runs"] += 1
        return None
    cached = image.iss_results.get(max_cycles)
    if cached is not None:
        _stats["iss_hits"] += 1
        if cached is _DEFERRED:
            _stats["deferred_runs"] += 1
            return None
        _stats["fast_runs"] += 1
        return _clone_data(cached, program)
    with obs_span("iss.collect", program=program.name):
        data = _collect_impl(image, program, max_cycles)
    if data is None:
        image.iss_results[max_cycles] = _DEFERRED
        return None
    image.iss_results[max_cycles] = data
    return _clone_data(data, program)


def _collect_impl(image, program, max_cycles):
    start = time.perf_counter()
    memory = image.memory_proto.copy()
    load = memory.load
    store = memory.store
    regs = [0] * 32
    flag = False
    carry = False
    pc = program.entry
    pending = 0
    in_ds = False
    steps = 0
    lookup = image.lookup
    nwords = len(lookup)
    slots = image.slots
    retired_idx = []
    a_list = []
    b_list = []
    ctrl_rows = []            # (retired index, target when taken else -1)
    store_words = set()
    append_idx = retired_idx.append
    append_a = a_list.append
    append_b = b_list.append
    link = REG_LINK

    while True:
        if steps >= max_cycles:
            _stats["deferred_runs"] += 1
            return None       # the object ISS reproduces the budget error
        word = pc >> 2
        if pc & 3 or word >= nwords:
            _stats["deferred_runs"] += 1
            return None
        index = lookup[word]
        if index < 0:
            _stats["deferred_runs"] += 1
            return None
        slot = slots[index]
        if slot is None:
            _stats["deferred_runs"] += 1
            return None
        op, rd, ra, rb, aux, aux2, bmask, is_ctrl = slot
        if in_ds and is_ctrl:
            _stats["deferred_runs"] += 1
            return None       # control in delay slot: the object ISS raises
        a = regs[ra]
        b = regs[rb] if bmask is None else bmask
        append_idx(index)
        append_a(a)
        append_b(b)
        steps += 1

        if op == OP_ADDI:
            total = a + aux
            carry = total > _MASK
            if rd:
                regs[rd] = total & _MASK
        elif op == OP_ADD:
            total = a + b
            carry = total > _MASK
            if rd:
                regs[rd] = total & _MASK
        elif op == OP_SFI:
            lhs = a - 0x100000000 if aux & 8 and a & 0x80000000 else a
            cond = aux & 7
            if cond == 0:
                flag = lhs == aux2
            elif cond == 1:
                flag = lhs != aux2
            elif cond == 2:
                flag = lhs > aux2
            elif cond == 3:
                flag = lhs >= aux2
            elif cond == 4:
                flag = lhs < aux2
            else:
                flag = lhs <= aux2
        elif op == OP_SF:
            if aux & 8:
                lhs = a - 0x100000000 if a & 0x80000000 else a
                rhs = b - 0x100000000 if b & 0x80000000 else b
            else:
                lhs = a
                rhs = b
            cond = aux & 7
            if cond == 0:
                flag = lhs == rhs
            elif cond == 1:
                flag = lhs != rhs
            elif cond == 2:
                flag = lhs > rhs
            elif cond == 3:
                flag = lhs >= rhs
            elif cond == 4:
                flag = lhs < rhs
            else:
                flag = lhs <= rhs
        elif op == OP_BF:
            if flag:
                ctrl_rows.append((steps - 1, aux))
                pending = aux
                in_ds = True
            else:
                ctrl_rows.append((steps - 1, -1))
            pc += 4
            continue
        elif op == OP_BNF:
            if flag:
                ctrl_rows.append((steps - 1, -1))
            else:
                ctrl_rows.append((steps - 1, aux))
                pending = aux
                in_ds = True
            pc += 4
            continue
        elif op == OP_LWZ:
            addr = (a + aux) & _MASK
            if addr & 3:
                _stats["deferred_runs"] += 1
                return None
            if rd:
                regs[rd] = load(addr, 4)
        elif op == OP_SW:
            addr = (a + aux) & _MASK
            if addr & 3:
                _stats["deferred_runs"] += 1
                return None
            store(addr, b, 4)
            store_words.add(addr)
        elif op == OP_NOP:
            pass
        elif op == OP_HALT:
            break
        elif op == OP_J:
            ctrl_rows.append((steps - 1, aux))
            pending = aux
            in_ds = True
            pc += 4
            continue
        elif op == OP_JAL:
            ctrl_rows.append((steps - 1, aux))
            regs[link] = aux2
            pending = aux
            in_ds = True
            pc += 4
            continue
        elif op == OP_JR:
            if b & 3:
                _stats["deferred_runs"] += 1
                return None
            ctrl_rows.append((steps - 1, b))
            pending = b
            in_ds = True
            pc += 4
            continue
        elif op == OP_JALR:
            if b & 3:
                _stats["deferred_runs"] += 1
                return None
            ctrl_rows.append((steps - 1, b))
            regs[link] = aux2
            pending = b
            in_ds = True
            pc += 4
            continue
        elif op == OP_SUB:
            total = a - b
            carry = total < 0
            if rd:
                regs[rd] = total & _MASK
        elif op == OP_ADDC:
            total = a + b + (1 if carry else 0)
            carry = total > _MASK
            if rd:
                regs[rd] = total & _MASK
        elif op == OP_ANDI:
            if rd:
                regs[rd] = a & aux
        elif op == OP_AND:
            if rd:
                regs[rd] = a & b
        elif op == OP_ORI:
            if rd:
                regs[rd] = a | aux
        elif op == OP_OR:
            if rd:
                regs[rd] = a | b
        elif op == OP_XORI:
            if rd:
                regs[rd] = a ^ aux
        elif op == OP_XOR:
            if rd:
                regs[rd] = a ^ b
        elif op == OP_CMOV:
            if rd:
                regs[rd] = a if flag else b
        elif op == OP_SLLI:
            if rd:
                regs[rd] = (a << aux) & _MASK
        elif op == OP_SLL:
            if rd:
                regs[rd] = (a << (b & 0x1F)) & _MASK
        elif op == OP_SRLI:
            if rd:
                regs[rd] = a >> aux
        elif op == OP_SRL:
            if rd:
                regs[rd] = a >> (b & 0x1F)
        elif op == OP_SRAI:
            if rd:
                regs[rd] = (
                    ((a - 0x100000000 if a & 0x80000000 else a) >> aux)
                    & _MASK
                )
        elif op == OP_SRA:
            if rd:
                regs[rd] = (
                    ((a - 0x100000000 if a & 0x80000000 else a)
                     >> (b & 0x1F)) & _MASK
                )
        elif op == OP_RORI:
            if rd:
                regs[rd] = (
                    ((a >> aux) | (a << (32 - aux))) & _MASK if aux else a
                )
        elif op == OP_ROR:
            amount = b & 0x1F
            if rd:
                regs[rd] = (
                    ((a >> amount) | (a << (32 - amount))) & _MASK
                    if amount else a
                )
        elif op == OP_MULI:
            if rd:
                regs[rd] = (a * aux) & _MASK
        elif op == OP_MUL:
            if rd:
                regs[rd] = (a * b) & _MASK
        elif op == OP_DIV:
            if rd:
                if b == 0:
                    regs[rd] = _MASK
                else:
                    lhs = a - 0x100000000 if a & 0x80000000 else a
                    rhs = b - 0x100000000 if b & 0x80000000 else b
                    quotient = abs(lhs) // abs(rhs)
                    if (lhs < 0) != (rhs < 0):
                        quotient = -quotient
                    regs[rd] = quotient & _MASK
        elif op == OP_DIVU:
            if rd:
                regs[rd] = _MASK if b == 0 else a // b
        elif op == OP_MOVHI:
            if rd:
                regs[rd] = aux
        elif op == OP_EXTHS:
            if rd:
                half = a & 0xFFFF
                regs[rd] = (half - 0x10000 if half & 0x8000 else half) & _MASK
        elif op == OP_EXTBS:
            if rd:
                byte = a & 0xFF
                regs[rd] = (byte - 0x100 if byte & 0x80 else byte) & _MASK
        elif op == OP_EXTHZ:
            if rd:
                regs[rd] = a & 0xFFFF
        elif op == OP_EXTBZ:
            if rd:
                regs[rd] = a & 0xFF
        elif op == OP_FF1:
            if rd:
                regs[rd] = (a & -a).bit_length() if a else 0
        elif op == OP_LBZ:
            if rd:
                regs[rd] = load((a + aux) & _MASK, 1)
        elif op == OP_LBS:
            byte = load((a + aux) & _MASK, 1)
            if rd:
                regs[rd] = (byte - 0x100 if byte & 0x80 else byte) & _MASK
        elif op == OP_LHZ:
            addr = (a + aux) & _MASK
            if addr & 1:
                _stats["deferred_runs"] += 1
                return None
            if rd:
                regs[rd] = load(addr, 2)
        elif op == OP_LHS:
            addr = (a + aux) & _MASK
            if addr & 1:
                _stats["deferred_runs"] += 1
                return None
            half = load(addr, 2)
            if rd:
                regs[rd] = (half - 0x10000 if half & 0x8000 else half) & _MASK
        elif op == OP_SB:
            store((a + aux) & _MASK, b & 0xFF, 1)
            store_words.add(((a + aux) & _MASK) & ~3)
        elif op == OP_SH:
            addr = (a + aux) & _MASK
            if addr & 1:
                _stats["deferred_runs"] += 1
                return None
            store(addr, b & 0xFFFF, 2)
            store_words.add(addr & ~3)
        else:
            _stats["deferred_runs"] += 1
            return None       # unreachable: every op id is handled above

        if in_ds:
            pc = pending
            in_ds = False
        else:
            pc += 4

    _stats["iss_seconds"] += time.perf_counter() - start
    _stats["fast_runs"] += 1
    return _package(
        image, program, memory, regs, flag, carry, pc,
        retired_idx, a_list, b_list, ctrl_rows, store_words,
    )


def _package(image, program, memory, regs, flag, carry, pc,
             retired_idx, a_list, b_list, ctrl_rows, store_words):
    count = len(retired_idx)
    if isinstance(retired_idx, np.ndarray):
        index = retired_idx
        idx_list = retired_idx.tolist()
    else:
        index = np.array(retired_idx, dtype=np.int64)
        idx_list = retired_idx
    pcs = image.np_pc[index]
    taken = np.zeros(count, dtype=bool)
    targets = np.zeros(count, dtype=np.int64)
    if len(ctrl_rows):      # list (scalar loop) or (k, 2) array (lockstep)
        rows = np.array(ctrl_rows, dtype=np.int64)
        where = rows[:, 0]
        target = rows[:, 1]
        taken[where] = target >= 0
        targets[where] = np.maximum(target, 0)
    image_instrs = image.instrs
    instrs = [image_instrs[i] for i in idx_list]
    state = ArchState(entry=program.entry)
    state.regs = regs
    state.flag = flag
    state.carry = carry
    state.pc = pc
    state.instret = count
    return IssData(
        state=state,
        memory=memory,
        retired=list(zip(pcs.tolist(), instrs)),
        pcs=pcs,
        instrs=instrs,
        a_vals=np.array(a_list, dtype=np.uint64),
        b_vals=np.array(b_list, dtype=np.uint64),
        taken=taken,
        targets=targets,
        cls=image.np_cls[index],
        kind=image.np_kind[index],
        dest=image.np_dest[index],
        src=image.np_src[index],
        store_words=store_words,
        class_names=list(image.class_names),
    )
