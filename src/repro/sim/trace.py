"""Per-cycle pipeline occupancy trace.

The dynamic timing analysis and the clock-adjustment controller both consume
the same information: *which instruction is in flight in which pipeline
stage in every cycle* (``I_s[t]`` in the paper's Eq. 2).  The pipeline
simulator records one :class:`CycleRecord` per cycle with six stage views.

Stage-occupancy conventions (documented here once, relied on everywhere):

- ``ADR`` holds the *fetch address* presented to the instruction memory in
  this cycle.  Its instruction identity is the to-be-fetched word; the
  *timing* of the ADR path group is driven by the next-pc logic, i.e. by
  the instruction in ``EX`` (redirect) or the sequential increment — see
  :mod:`repro.dta.grouping` for the driver-stage mapping.
- A slot of ``None`` is a bubble (flushed or interlocked slot).
- ``held`` marks stages that did not capture new data this cycle (stall):
  their endpoints see no input events, so their dynamic delay is the
  minimal hold delay.
"""

import enum
from dataclasses import dataclass, field


class Stage(enum.IntEnum):
    """The six pipeline stages of the customised mor1kx core (paper Fig. 4)."""

    ADR = 0
    FE = 1
    DC = 2
    EX = 3
    CTRL = 4
    WB = 5


#: Stages in pipeline order.
PIPELINE_STAGES = tuple(Stage)

#: Paper-style short names, used in reports and figures.
STAGE_NAMES = {
    Stage.ADR: "ADR",
    Stage.FE: "FE",
    Stage.DC: "DC",
    Stage.EX: "EX",
    Stage.CTRL: "CTRL",
    Stage.WB: "WB",
}


@dataclass(frozen=True)
class StageView:
    """What occupies one pipeline stage in one cycle.

    ``seq`` is the unique program-order sequence number of the instruction
    (used to group all cycles belonging to one dynamic occurrence), ``held``
    is True when the stage kept its previous content due to a stall.
    """

    mnemonic: str = None     # None -> bubble
    timing_class: str = None
    pc: int = None
    seq: int = None
    held: bool = False

    @property
    def is_bubble(self):
        return self.mnemonic is None


#: Reusable bubble view.
BUBBLE_VIEW = StageView()


@dataclass
class CycleRecord:
    """Snapshot of one clock cycle.

    Attributes
    ----------
    cycle:
        Cycle index, starting at 0.
    slots:
        Tuple of per-column :class:`StageView` (one per pipeline-spec
        stage; six for the default machine, indexed by :class:`Stage`).
    ex_operands:
        ``(a, b)`` operand values of the EX-stage instruction (``None`` for
        bubbles); used by the data-dependent excitation model.
    redirect:
        True if the EX instruction redirected the fetch this cycle.
    stall:
        True if the front-end (ADR/FE/DC) was held this cycle.
    """

    cycle: int
    slots: tuple
    ex_operands: tuple = None
    redirect: bool = False
    stall: bool = False

    def view(self, stage):
        return self.slots[stage]

    def mnemonic(self, stage):
        return self.slots[stage].mnemonic


@dataclass
class PipelineTrace:
    """Complete record of one pipeline run."""

    program_name: str
    records: list = field(default_factory=list)
    retired: list = field(default_factory=list)   # (pc, Instruction)

    def append(self, record):
        self.records.append(record)

    @property
    def num_cycles(self):
        return len(self.records)

    @property
    def num_retired(self):
        return len(self.retired)

    @property
    def cpi(self):
        if not self.retired:
            raise ValueError("no retired instructions")
        return self.num_cycles / self.num_retired

    def retired_trace(self):
        """The architectural program trace L[t]."""
        return [instruction for _, instruction in self.retired]

    def stage_utilization(self):
        """Fraction of non-bubble cycles per stage (diagnostics)."""
        if not self.records:
            return {stage: 0.0 for stage in Stage}
        totals = {stage: 0 for stage in Stage}
        for record in self.records:
            for stage in Stage:
                if not record.slots[stage].is_bubble:
                    totals[stage] += 1
        return {
            stage: totals[stage] / len(self.records) for stage in Stage
        }

    def class_mix(self):
        """Timing-class frequency of the retired stream (for reports)."""
        counts = {}
        for instruction in self.retired_trace():
            cls = instruction.timing_class
            counts[cls] = counts.get(cls, 0) + 1
        return counts
