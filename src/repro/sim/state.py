"""Architectural state shared by the functional ISS and the pipeline model."""

from repro.isa.registers import REG_COUNT, REG_ZERO
from repro.utils.bitops import to_unsigned32


class ArchState:
    """OR1K architectural state: 32 GPRs, SR flag/carry bits and the PC.

    ``r0`` reads as zero; writes to it are silently discarded (matching the
    mor1kx configuration used in the paper's case study).
    """

    def __init__(self, entry=0):
        self.regs = [0] * REG_COUNT
        self.flag = False
        self.carry = False
        self.pc = entry
        self.instret = 0

    def read_reg(self, index):
        if index == REG_ZERO:
            return 0
        return self.regs[index]

    def write_reg(self, index, value):
        if index != REG_ZERO:
            self.regs[index] = to_unsigned32(value)

    def snapshot(self):
        """Copy of (regs, flag, carry, pc) for golden-model comparison."""
        return (tuple(self.regs), self.flag, self.carry, self.pc)

    def __repr__(self):
        return (
            f"ArchState(pc={self.pc:#010x}, flag={int(self.flag)}, "
            f"carry={int(self.carry)}, instret={self.instret})"
        )
