"""Tunable clock generator models.

The paper treats the clock generator as out of scope but cites realisable
options: tunable ring oscillators with muxed outputs [9][10] and multi-PLL
clocking units [11].  We model the *attainable period sets* of these
options so that the quantisation ablation (bench A2) can measure how much
of the fine-grained gain survives a realistic generator.

Every generator guarantees the safety direction: the granted period is
never shorter than the requested one.

Each generator grants periods one at a time (``quantize_up``, the hardware
view) or for a whole trace at once (``quantize_up_array``, used by the
batch evaluation engine).  The array path performs the same float
operations per element, so grants are bit-identical between the two.
"""

import math

import numpy as np


class ClockGeneratorError(ValueError):
    """Requested period cannot be granted safely."""


def _check_positive(periods_ps):
    periods_ps = np.asarray(periods_ps, dtype=float)
    if periods_ps.size and float(periods_ps.min()) <= 0:
        bad = float(periods_ps.min())
        raise ClockGeneratorError(f"invalid period {bad}")
    return periods_ps


class IdealClockGenerator:
    """Continuously tunable source: grants exactly the requested period."""

    name = "ideal"

    def quantize_up(self, period_ps):
        if period_ps <= 0:
            raise ClockGeneratorError(f"invalid period {period_ps}")
        return period_ps

    def quantize_up_array(self, periods_ps):
        return _check_positive(periods_ps)

    def available_periods(self):
        return None   # continuum


class TunableRingOscillator:
    """Ring oscillator with discrete taps every ``step_ps`` picoseconds.

    Periods from ``min_period_ps`` to ``max_period_ps`` inclusive are
    available; requests are rounded *up* to the next tap.
    """

    name = "ring-oscillator"

    def __init__(self, step_ps=50.0, min_period_ps=600.0,
                 max_period_ps=2400.0):
        if step_ps <= 0 or min_period_ps <= 0 or max_period_ps < min_period_ps:
            raise ClockGeneratorError("invalid ring-oscillator configuration")
        self.step_ps = step_ps
        self.min_period_ps = min_period_ps
        self.max_period_ps = max_period_ps

    def quantize_up(self, period_ps):
        if period_ps <= 0:
            raise ClockGeneratorError(f"invalid period {period_ps}")
        clamped = max(period_ps, self.min_period_ps)
        steps = math.ceil(
            (clamped - self.min_period_ps) / self.step_ps - 1e-9
        )
        granted = self.min_period_ps + steps * self.step_ps
        if granted > self.max_period_ps + 1e-9:
            raise ClockGeneratorError(
                f"period {period_ps:.1f} ps exceeds the oscillator range "
                f"(max {self.max_period_ps:.1f} ps)"
            )
        return granted

    def quantize_up_array(self, periods_ps):
        periods_ps = _check_positive(periods_ps)
        clamped = np.maximum(periods_ps, self.min_period_ps)
        steps = np.ceil(
            (clamped - self.min_period_ps) / self.step_ps - 1e-9
        )
        granted = self.min_period_ps + steps * self.step_ps
        over = granted > self.max_period_ps + 1e-9
        if over.any():
            worst = float(periods_ps[over].max())
            raise ClockGeneratorError(
                f"period {worst:.1f} ps exceeds the oscillator range "
                f"(max {self.max_period_ps:.1f} ps)"
            )
        return granted

    def available_periods(self):
        count = int(
            (self.max_period_ps - self.min_period_ps) / self.step_ps
        ) + 1
        return [self.min_period_ps + i * self.step_ps for i in range(count)]


class MultiPLLClockGenerator:
    """A small set of PLL outputs muxed per cycle (coarsest option).

    The default frequency plan brackets the design's operating range at
    0.70 V: the slowest PLL must run at or below the STA frequency so the
    static fallback period is attainable.
    """

    name = "multi-pll"

    DEFAULT_FREQUENCIES_MHZ = (490.0, 560.0, 640.0, 720.0, 800.0)

    def __init__(self, frequencies_mhz=DEFAULT_FREQUENCIES_MHZ):
        if not frequencies_mhz:
            raise ClockGeneratorError("need at least one PLL frequency")
        self.frequencies_mhz = tuple(sorted(frequencies_mhz))
        self._periods = sorted(
            1e6 / freq for freq in self.frequencies_mhz
        )
        self._period_grid = np.array(self._periods)
        # a request p is granted grid[i] iff grid[i] + 1e-9 >= p, so the
        # searchsorted thresholds are exactly the scalar comparison values
        self._grant_thresholds = self._period_grid + 1e-9

    def quantize_up(self, period_ps):
        if period_ps <= 0:
            raise ClockGeneratorError(f"invalid period {period_ps}")
        for period in self._periods:
            if period + 1e-9 >= period_ps:
                return period
        raise ClockGeneratorError(
            f"period {period_ps:.1f} ps exceeds the slowest PLL "
            f"({self._periods[-1]:.1f} ps)"
        )

    def quantize_up_array(self, periods_ps):
        periods_ps = _check_positive(periods_ps)
        indices = np.searchsorted(
            self._grant_thresholds, periods_ps, side="left"
        )
        over = indices >= len(self._periods)
        if over.any():
            worst = float(periods_ps[over].max())
            raise ClockGeneratorError(
                f"period {worst:.1f} ps exceeds the slowest PLL "
                f"({self._periods[-1]:.1f} ps)"
            )
        return self._period_grid[indices]

    def available_periods(self):
        return list(self._periods)
