"""The cycle-by-cycle clock adjustment controller (paper Fig. 1).

Combines a prediction policy with a clock-generator model and an optional
safety margin.  The controller is the hardware block the paper proposes:
per cycle it reads the LUT delays of the in-flight instructions, forms the
maximum, and retunes the clock generator.

Statistics are computed from the full period sequence
(:meth:`ControllerStats.from_periods`) in both the scalar and the batch
path, so the two evaluation engines report bit-identical aggregates.
"""

from dataclasses import dataclass

import numpy as np


@dataclass
class ControllerStats:
    """Aggregates of one evaluation run.

    For a zero-cycle run the extrema are NaN (there is no period to take a
    minimum or maximum of) and :attr:`average_period_ps` raises — callers
    that may see empty traces should check :attr:`cycles` first.
    """

    cycles: int = 0
    total_time_ps: float = 0.0
    switches: int = 0
    min_period_ps: float = float("nan")
    max_period_ps: float = float("nan")

    @classmethod
    def from_periods(cls, periods_ps):
        """Compute the aggregates from the applied-period sequence."""
        periods_ps = np.asarray(periods_ps, dtype=float)
        if periods_ps.size == 0:
            return cls()
        return cls(
            cycles=int(periods_ps.size),
            total_time_ps=float(periods_ps.sum()),
            switches=int(
                np.count_nonzero(periods_ps[1:] != periods_ps[:-1])
            ),
            min_period_ps=float(periods_ps.min()),
            max_period_ps=float(periods_ps.max()),
        )

    @property
    def average_period_ps(self):
        if self.cycles == 0:
            raise ValueError("no cycles recorded")
        return self.total_time_ps / self.cycles

    @property
    def switch_rate(self):
        """Fraction of cycles with a period change (CG activity metric)."""
        if self.cycles <= 1:
            return 0.0
        return self.switches / (self.cycles - 1)

    @property
    def is_empty(self):
        return self.cycles == 0


class ClockAdjustmentController:
    """Per-cycle period decision = quantize(policy period × (1 + margin)).

    Parameters
    ----------
    policy:
        A prediction policy (``period_for(record)``, and optionally the
        vectorized ``periods_for(compiled_trace)``).
    generator:
        Clock-generator model; ``None`` means ideal (continuous).
    margin_percent:
        Extra guard band re-inserted on top of the prediction (ablation
        A4); the paper's scheme runs at 0.
    """

    def __init__(self, policy, generator=None, margin_percent=0.0):
        if margin_percent < 0:
            raise ValueError("margin cannot be negative")
        self.policy = policy
        self.generator = generator
        self.margin = 1.0 + margin_percent / 100.0
        self._periods = []
        self._stats = None

    def period_for(self, record):
        """Decide the clock period for one cycle and record it."""
        period = self.policy.period_for(record) * self.margin
        if self.generator is not None:
            period = self.generator.quantize_up(period)
        self._periods.append(period)
        self._stats = None
        return period

    def periods_for(self, compiled_trace):
        """Decide the periods of a whole compiled trace at once.

        Applies margin scaling and generator quantisation element-wise
        (same operations as :meth:`period_for`) and records the sequence
        for :attr:`stats`.
        """
        if hasattr(self.policy, "periods_for"):
            periods = np.asarray(
                self.policy.periods_for(compiled_trace), dtype=float
            )
        else:
            periods = np.array([
                self.policy.period_for(record)
                for record in compiled_trace.trace.records
            ], dtype=float)
        periods = periods * self.margin
        if self.generator is not None:
            if hasattr(self.generator, "quantize_up_array"):
                periods = self.generator.quantize_up_array(periods)
            else:
                periods = np.array([
                    self.generator.quantize_up(period)
                    for period in periods.tolist()
                ])
        self._periods.extend(periods.tolist())
        self._stats = None
        return periods

    @property
    def stats(self):
        if self._stats is None:
            self._stats = ControllerStats.from_periods(self._periods)
        return self._stats

    def reset(self):
        self._periods = []
        self._stats = None
