"""The cycle-by-cycle clock adjustment controller (paper Fig. 1).

Combines a prediction policy with a clock-generator model and an optional
safety margin.  The controller is the hardware block the paper proposes:
per cycle it reads the LUT delays of the in-flight instructions, forms the
maximum, and retunes the clock generator.
"""

from dataclasses import dataclass, field


@dataclass
class ControllerStats:
    """Aggregates of one evaluation run."""

    cycles: int = 0
    total_time_ps: float = 0.0
    switches: int = 0
    min_period_ps: float = float("inf")
    max_period_ps: float = 0.0
    _last_period: float = field(default=None, repr=False)

    def record(self, period_ps):
        self.cycles += 1
        self.total_time_ps += period_ps
        self.min_period_ps = min(self.min_period_ps, period_ps)
        self.max_period_ps = max(self.max_period_ps, period_ps)
        if self._last_period is not None and period_ps != self._last_period:
            self.switches += 1
        self._last_period = period_ps

    @property
    def average_period_ps(self):
        if self.cycles == 0:
            raise ValueError("no cycles recorded")
        return self.total_time_ps / self.cycles

    @property
    def switch_rate(self):
        """Fraction of cycles with a period change (CG activity metric)."""
        if self.cycles <= 1:
            return 0.0
        return self.switches / (self.cycles - 1)


class ClockAdjustmentController:
    """Per-cycle period decision = quantize(policy period × (1 + margin)).

    Parameters
    ----------
    policy:
        A prediction policy (``period_for(record)``).
    generator:
        Clock-generator model; ``None`` means ideal (continuous).
    margin_percent:
        Extra guard band re-inserted on top of the prediction (ablation
        A4); the paper's scheme runs at 0.
    """

    def __init__(self, policy, generator=None, margin_percent=0.0):
        if margin_percent < 0:
            raise ValueError("margin cannot be negative")
        self.policy = policy
        self.generator = generator
        self.margin = 1.0 + margin_percent / 100.0
        self.stats = ControllerStats()

    def period_for(self, record):
        """Decide the clock period for one cycle and record it."""
        period = self.policy.period_for(record) * self.margin
        if self.generator is not None:
            period = self.generator.quantize_up(period)
        self.stats.record(period)
        return period

    def reset(self):
        self.stats = ControllerStats()
