"""Clock-period prediction policies.

A policy maps one pipeline :class:`~repro.sim.trace.CycleRecord` to the
clock period it requests for that cycle.  All policies are *predictive*:
they use only information available in the cycle itself (which decoded
instructions are in flight), never measured outcomes — except the genie
oracle, which exists to compute the paper's theoretical upper bound.

Every policy offers two equivalent entry points:

- ``period_for(record)`` — the scalar, per-cycle decision (the hardware
  view of the controller; also the reference semantics);
- ``periods_for(compiled_trace)`` — the whole trace at once, as a NumPy
  array, driven by the :class:`~repro.dta.compiled.CompiledTrace` class-id
  matrix.  LUT policies reduce to integer fancy-indexing into a
  class×stage table; the genie reduces to a row-wise max of the compiled
  delay matrix.  Results are bit-identical to the scalar path (same table
  lookups, same float operations).
"""

import numpy as np

from repro.dta.extraction import attribute_cycle
from repro.sim.trace import Stage
from repro.timing.profiles import BUBBLE_CLASS


class StaticClockPolicy:
    """Conventional synchronous clocking at the STA period (Eq. 1)."""

    name = "static"

    def __init__(self, period_ps):
        if period_ps <= 0:
            raise ValueError(f"invalid static period {period_ps}")
        self.period_ps = period_ps

    def period_for(self, record):
        return self.period_ps

    def periods_for(self, compiled_trace):
        return np.full(compiled_trace.num_cycles, float(self.period_ps))


class InstructionLutPolicy:
    """The paper's technique (Fig. 1, Eq. 2): monitor the instruction in
    every pipeline stage and take the maximum of their LUT delays."""

    name = "instruction-lut"

    def __init__(self, lut):
        self.lut = lut

    def period_for(self, record):
        classes = attribute_cycle(record)
        return max(
            self.lut.entry(classes[stage], stage) for stage in Stage
        )

    def periods_for(self, compiled_trace):
        table = compiled_trace.class_table(self.lut.entry)
        return compiled_trace.stage_periods(table).max(axis=1)


class ExOnlyLutPolicy:
    """Simplified monitor (paper Sec. IV-A): track only the EX-stage
    instruction, with fixed floors guaranteeing the other stage groups.

    The EX occupant also determines the ADR group in our microarchitecture
    (next-pc logic), so monitoring EX covers the two groups the paper finds
    limiting in 100 % of the significant cycles; FE/DC/CTRL/WB are covered
    by a static floor — the worst characterised entry of each group.
    """

    name = "ex-only-lut"

    def __init__(self, lut):
        self.lut = lut
        self.floor_ps = self._static_floor()

    def _static_floor(self):
        floor = 0.0
        floor_stages = (Stage.FE, Stage.DC, Stage.CTRL, Stage.WB)
        for cls in list(self.lut.classes()) + [BUBBLE_CLASS]:
            if not self.lut.is_characterized(cls):
                continue   # never predicted for these stages anyway
            for stage in floor_stages:
                floor = max(floor, self.lut.entry(cls, stage))
        return floor if floor > 0 else self.lut.static_period_ps

    def period_for(self, record):
        ex_cls = attribute_cycle(record)[Stage.EX]
        return max(
            self.lut.entry(ex_cls, Stage.EX),
            self.lut.entry(ex_cls, Stage.ADR),
            self.floor_ps,
        )

    def periods_for(self, compiled_trace):
        ex = getattr(compiled_trace, "ex_column", int(Stage.EX))
        ex_ids = compiled_trace.class_ids[:, ex]
        ex_table = compiled_trace.class_column(
            lambda cls: self.lut.entry(cls, Stage.EX)
        )
        adr_table = compiled_trace.class_column(
            lambda cls: self.lut.entry(cls, Stage.ADR)
        )
        return np.maximum(
            np.maximum(ex_table[ex_ids], adr_table[ex_ids]), self.floor_ps
        )


class TwoClassPolicy:
    """Two-speed baseline in the spirit of application-adaptive
    guard-banding [8]: instructions are split into a *slow* and a *fast*
    class and the clock toggles between just two periods.

    By default the slow set contains the multiply/divide classes plus
    everything that fell back to static characterisation.
    """

    name = "two-class"

    DEFAULT_SLOW = ("l.mul(i)", "l.div")

    def __init__(self, lut, slow_classes=None):
        self.lut = lut
        if slow_classes is None:
            slow_classes = self.DEFAULT_SLOW
        self.slow_classes = set(slow_classes)
        self.slow_period_ps = lut.static_period_ps
        self.fast_period_ps = self._fast_period()

    def _fast_period(self):
        """Worst LUT entry over every fast, characterised class and every
        stage — the fast period must be safe for anything non-slow."""
        worst = 0.0
        for cls in list(self.lut.classes()) + [BUBBLE_CLASS]:
            if cls in self.slow_classes:
                continue
            if not self.lut.is_characterized(cls):
                # uncharacterised classes force the slow period at runtime
                continue
            for stage in Stage:
                worst = max(worst, self.lut.entry(cls, stage))
        return worst if worst > 0 else self.lut.static_period_ps

    def _is_slow(self, cls):
        return (
            cls in self.slow_classes
            or not self.lut.is_characterized(cls)
        )

    def period_for(self, record):
        classes = attribute_cycle(record)
        if any(self._is_slow(classes[stage]) for stage in Stage):
            return self.slow_period_ps
        return self.fast_period_ps

    def periods_for(self, compiled_trace):
        slow = np.array(
            [self._is_slow(cls) for cls in compiled_trace.class_names],
            dtype=bool,
        )
        any_slow = slow[compiled_trace.class_ids].any(axis=1)
        return np.where(
            any_slow, float(self.slow_period_ps), float(self.fast_period_ps)
        )


class LearnedPolicy:
    """A trained period predictor (ML-DFS) deployed as a clock policy.

    Wraps a :class:`~repro.ml.model.LearnedModel` — a decision-tree
    envelope regressor or two-level logistic classifier fitted on
    per-cycle pipeline features and calibrated against genie ground
    truth (see :mod:`repro.ml.train`).  Predictions are *normalized*
    (fractions of the static period), so the policy scales them back by
    the design's static period at deployment.

    The vectorized path extracts the whole feature matrix from the
    compiled trace; the scalar path keeps an
    :class:`~repro.ml.features.OnlineFeatureExtractor` whose
    shift-register window state makes per-record decisions bit-identical
    to the array path.  Like the LUT policies, the predictor never sees
    measured outcomes — only the in-flight instruction context.
    """

    name = "learned"

    def __init__(self, model, static_period_ps):
        if static_period_ps <= 0:
            raise ValueError(f"invalid static period {static_period_ps}")
        self.model = model
        self.static_period_ps = float(static_period_ps)
        self._extractor = None

    def period_for(self, record):
        from repro.ml.features import OnlineFeatureExtractor

        if self._extractor is None:
            self._extractor = OnlineFeatureExtractor(
                vocabulary=self.model.vocabulary,
                window=self.model.window,
            )
        row = self._extractor.features_for(record)
        normalized = self.model.predict_normalized(row)[0]
        return float(normalized) * self.static_period_ps

    def periods_for(self, compiled_trace):
        from repro.ml.features import extract_features

        features = extract_features(
            compiled_trace,
            vocabulary=self.model.vocabulary,
            window=self.model.window,
        )
        normalized = self.model.predict_normalized(features.matrix)
        return normalized * self.static_period_ps


class GeniePolicy:
    """A-posteriori oracle: per-cycle minimum safe period (Sec. IV-A).

    Uses the excitation model's measured delays, i.e. knowledge a real
    predictive controller cannot have.  Only used to compute the
    theoretical upper bound on the gains (the paper's 50 %).
    """

    name = "genie"

    def __init__(self, excitation):
        self.excitation = excitation

    def period_for(self, record):
        return self.excitation.cycle_max(record)

    def _same_operating_point(self, compiled_trace):
        """Excitation models are pure functions of (variant, voltage), so
        equal operating points yield identical delay matrices.  Pipeline
        specs extend the trace's operating point with a digest but do not
        change the excitation, so only the first two elements matter:
        the genie reads the trace's own ground-truth matrix.  The
        comparison uses the trace's recorded operating point, so traces
        rehydrated from the artifact store (which carry a delay matrix but
        no live excitation model) validate the same way."""
        if compiled_trace.excitation is self.excitation:
            return True
        point = compiled_trace.operating_point
        return point is not None and tuple(point[:2]) == (
            self.excitation.profile.variant.value,
            self.excitation.library.voltage,
        )

    def periods_for(self, compiled_trace):
        if not self._same_operating_point(compiled_trace):
            # compiled against another operating point: replay per record
            if compiled_trace.trace is None:
                raise ValueError(
                    "genie policy at operating point "
                    f"({self.excitation.profile.variant.value}, "
                    f"{self.excitation.library.voltage}) cannot evaluate "
                    "a store-rehydrated trace compiled at "
                    f"{compiled_trace.operating_point}: it has no "
                    "per-record trace to replay"
                )
            return np.array([
                self.period_for(record)
                for record in compiled_trace.trace.records
            ])
        return compiled_trace.cycle_max_delays()
