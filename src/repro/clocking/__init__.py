"""Cycle-by-cycle adjustable clocking (paper Fig. 1).

- :mod:`repro.clocking.generator` — models of the tunable clock generator
  the paper references ([9]-[11]): an ideal continuously-tunable source, a
  ring-oscillator with discrete taps, and a multi-PLL mux;
- :mod:`repro.clocking.policies` — clock-period prediction policies: the
  paper's per-instruction LUT monitor, the simplified EX-only monitor
  (Sec. IV-A), a two-class baseline in the spirit of
  application-adaptive guard-banding [8], the genie-aided oracle, the
  static baseline, and the trained ML-DFS predictor
  (:class:`~repro.clocking.policies.LearnedPolicy`, see
  :mod:`repro.ml`);
- :mod:`repro.clocking.controller` — combines a policy with a generator
  and an optional safety margin into the per-cycle period decision.
"""

from repro.clocking.controller import ClockAdjustmentController
from repro.clocking.generator import (
    ClockGeneratorError,
    IdealClockGenerator,
    MultiPLLClockGenerator,
    TunableRingOscillator,
)
from repro.clocking.policies import (
    ExOnlyLutPolicy,
    GeniePolicy,
    InstructionLutPolicy,
    LearnedPolicy,
    StaticClockPolicy,
    TwoClassPolicy,
)

__all__ = [
    "ClockAdjustmentController",
    "IdealClockGenerator",
    "TunableRingOscillator",
    "MultiPLLClockGenerator",
    "ClockGeneratorError",
    "StaticClockPolicy",
    "InstructionLutPolicy",
    "ExOnlyLutPolicy",
    "TwoClassPolicy",
    "GeniePolicy",
    "LearnedPolicy",
]
