"""Declarative sweep scenarios.

A :class:`ScenarioGrid` names every axis of a sweep — policies,
generators, safety margins, supply voltages, design variants, pipeline
specs, workloads —
and expands the cross product into the structures the engine consumes:
:class:`DesignPoint` operating points (one evaluation context each) and
:class:`ConfigSpec` rows (one ``SweepConfig`` each, materialised against
a characterised design).

Grids are plain data: loadable from JSON or TOML (``from_file``),
round-trippable through ``to_dict``, and fingerprinted (SHA-256 of the
canonical form) so run manifests and cached sweep results can tell
whether they belong to the same experiment.

Example grid (JSON)::

    {
      "name": "margins-vs-voltage",
      "policies": ["instruction", "genie"],
      "margins": [0.0, 5.0],
      "voltages": [0.70, 0.80],
      "workloads": ["crc32", "matmult"]
    }
"""

import json
from dataclasses import dataclass

from repro.flow.evaluate import DEFAULT_MAX_CYCLES, SweepConfig
from repro.ml.model import LEARNED_PREFIX, is_learned_spec
from repro.sim.spec import DEFAULT_SPEC, get_pipeline_spec
from repro.timing.profiles import DesignVariant

#: Policy names understood by ``DynamicClockAdjustment.make_policy``.
POLICY_NAMES = ("instruction", "ex-only", "two-class", "genie", "static")

#: Spec prefix deploying a trained model file: ``learned:<model.npz>``
#: (one definition, in :mod:`repro.ml.model`).  Grid validation checks
#: the spec shape only; the model file itself is validated by
#: :func:`repro.ml.model.validate_policy_specs` before any simulation.
LEARNED_POLICY_PREFIX = LEARNED_PREFIX

#: Generator names understood by ``DynamicClockAdjustment.make_generator``.
GENERATOR_NAMES = ("ideal", "ring", "pll")


class ScenarioError(ValueError):
    """A grid spec is malformed (unknown axis value, bad type, ...)."""


@dataclass(frozen=True)
class DesignPoint:
    """One operating point of the processor: variant × supply voltage
    (× pipeline spec, for non-default microarchitectures)."""

    variant: str
    voltage: float
    pipeline_spec: str = DEFAULT_SPEC.name

    @property
    def _is_default_spec(self):
        return self.pipeline_spec == DEFAULT_SPEC.name

    @property
    def label(self):
        """Display label; rounds the voltage for readability."""
        label = f"{self.variant}@{self.voltage:.2f}V"
        if not self._is_default_spec:
            label += f"/{self.pipeline_spec}"
        return label

    @property
    def key(self):
        """Exact identity for unit ids and manifests — ``repr`` keeps
        full float precision, so nearly-equal voltages never collide.
        The default pipeline spec is omitted, so pre-spec unit ids are
        unchanged."""
        key = f"{self.variant}@{self.voltage!r}"
        if not self._is_default_spec:
            key += f"/{self.pipeline_spec}"
        return key

    def build(self):
        from repro.timing.design import build_design

        return build_design(DesignVariant(self.variant),
                            voltage=self.voltage,
                            pipeline_spec=self.pipeline_spec)

    def as_dict(self):
        payload = {"variant": self.variant, "voltage": self.voltage}
        if not self._is_default_spec:
            payload["pipeline_spec"] = self.pipeline_spec
        return payload


@dataclass(frozen=True)
class ConfigSpec:
    """One configuration row: policy × generator × margin."""

    policy: str
    generator: str = "ideal"
    margin_percent: float = 0.0
    check_safety: bool = False

    @property
    def label(self):
        label = f"{self.policy}/{self.generator}"
        if self.margin_percent:
            label += f"/margin={self.margin_percent:g}%"
        return label

    def make(self, dca):
        """Materialise the spec into a ``SweepConfig`` bound to one
        characterised design (``DynamicClockAdjustment``)."""
        return SweepConfig(
            policy=(lambda name=self.policy: dca.make_policy(name)),
            generator=dca.make_generator(self.generator),
            margin_percent=self.margin_percent,
            check_safety=self.check_safety,
            label=self.label,
        )

    def as_dict(self):
        return {
            "policy": self.policy,
            "generator": self.generator,
            "margin_percent": self.margin_percent,
            "check_safety": self.check_safety,
        }


@dataclass
class ScenarioGrid:
    """The full cross product of a sweep experiment."""

    name: str = "sweep"
    policies: tuple = ("instruction",)
    generators: tuple = ("ideal",)
    margins: tuple = (0.0,)
    variants: tuple = (DesignVariant.CRITICAL_RANGE.value,)
    voltages: tuple = (0.70,)
    #: Kernel names or assembly-file paths; empty means the full
    #: Fig. 8 benchmark suite.
    workloads: tuple = ()
    check_safety: bool = False
    max_cycles: int = DEFAULT_MAX_CYCLES
    #: Registered pipeline-spec preset names (``repro.sim.spec``); the
    #: default single-entry axis keeps grid fingerprints unchanged.
    pipeline_specs: tuple = (DEFAULT_SPEC.name,)

    def __post_init__(self):
        self.policies = tuple(self.policies)
        self.generators = tuple(self.generators)
        self.margins = tuple(float(m) for m in self.margins)
        self.variants = tuple(self.variants)
        self.voltages = tuple(float(v) for v in self.voltages)
        self.workloads = tuple(self.workloads)
        self.pipeline_specs = tuple(self.pipeline_specs)
        self.validate()

    # -- validation ----------------------------------------------------------

    def validate(self):
        for axis, values, known in (
            ("policies", self.policies, POLICY_NAMES),
            ("generators", self.generators, GENERATOR_NAMES),
            ("variants", self.variants,
             tuple(v.value for v in DesignVariant)),
        ):
            if not values:
                raise ScenarioError(f"grid axis {axis!r} is empty")
            for value in values:
                if axis == "policies" and is_learned_spec(value):
                    if not value[len(LEARNED_POLICY_PREFIX):]:
                        raise ScenarioError(
                            "learned policy spec needs a model path: "
                            "learned:<model.npz>"
                        )
                    continue
                if value not in known:
                    extra = (
                        " or learned:<model.npz>"
                        if axis == "policies" else ""
                    )
                    singular = {"policies": "policy"}.get(axis, axis[:-1])
                    raise ScenarioError(
                        f"unknown {singular} {value!r}; "
                        f"choose from {', '.join(known)}{extra}"
                    )
        if not self.margins:
            raise ScenarioError("grid axis 'margins' is empty")
        if any(m < 0 for m in self.margins):
            raise ScenarioError("margins cannot be negative")
        if not self.voltages:
            raise ScenarioError("grid axis 'voltages' is empty")
        if any(v <= 0 for v in self.voltages):
            raise ScenarioError("voltages must be positive")
        if self.max_cycles <= 0:
            raise ScenarioError("max_cycles must be positive")
        if not self.pipeline_specs:
            raise ScenarioError("grid axis 'pipeline_specs' is empty")
        for name in self.pipeline_specs:
            try:
                get_pipeline_spec(name)
            except (TypeError, ValueError) as error:
                raise ScenarioError(str(error)) from None
        return self

    # -- expansion -----------------------------------------------------------

    def design_points(self):
        """Operating points, variant-major then voltage then pipeline
        spec, in spec order."""
        return [
            DesignPoint(variant=variant, voltage=voltage,
                        pipeline_spec=spec)
            for variant in self.variants
            for voltage in self.voltages
            for spec in self.pipeline_specs
        ]

    def config_specs(self):
        """Configuration rows, policy-major, in spec order."""
        return [
            ConfigSpec(
                policy=policy, generator=generator, margin_percent=margin,
                check_safety=self.check_safety,
            )
            for policy in self.policies
            for generator in self.generators
            for margin in self.margins
        ]

    def workload_specs(self):
        """Program specs; empty ``workloads`` means the Fig. 8 suite."""
        if self.workloads:
            return list(self.workloads)
        from repro.workloads.suite import suite_names

        return suite_names()

    def programs(self):
        from repro.workloads import resolve_program

        return [resolve_program(spec) for spec in self.workload_specs()]

    @property
    def num_units(self):
        """Shardable work units: one per (design point, workload)."""
        return len(self.design_points()) * len(self.workload_specs())

    @property
    def num_evaluations(self):
        return self.num_units * len(self.config_specs())

    # -- serialisation -------------------------------------------------------

    def to_dict(self):
        payload = {
            "name": self.name,
            "policies": list(self.policies),
            "generators": list(self.generators),
            "margins": list(self.margins),
            "variants": list(self.variants),
            "voltages": list(self.voltages),
            "workloads": list(self.workloads),
            "check_safety": self.check_safety,
            "max_cycles": self.max_cycles,
        }
        # the default axis is omitted so pre-spec grid fingerprints
        # (and cached sweep manifests) stay stable
        if self.pipeline_specs != (DEFAULT_SPEC.name,):
            payload["pipeline_specs"] = list(self.pipeline_specs)
        return payload

    def fingerprint(self):
        """SHA-256 over the canonical dict — the identity of the
        experiment for manifests and cached sweep results.

        ``learned:`` policy specs name a model *file*, so the payload
        also digests each named model's bytes: retraining a model at
        the same path changes the fingerprint, which keeps
        ``--resume`` from merging checkpoints evaluated under the old
        model with fresh units evaluated under the new one.  A missing
        file digests as ``"missing"`` (the sweep will fail fast on it
        anyway).
        """
        import hashlib
        import pathlib

        payload = self.to_dict()
        learned = {}
        for policy in self.policies:
            if not is_learned_spec(policy):
                continue
            path = pathlib.Path(policy[len(LEARNED_POLICY_PREFIX):])
            try:
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
            except OSError:
                digest = "missing"
            learned[policy] = digest
        if learned:
            payload["learned_models"] = learned
        text = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    @classmethod
    def from_dict(cls, payload):
        if not isinstance(payload, dict):
            raise ScenarioError(
                f"grid spec must be a mapping, got {type(payload).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ScenarioError(
                f"unknown grid fields: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise ScenarioError(str(error)) from None

    @classmethod
    def from_json(cls, text):
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ScenarioError(f"invalid JSON grid: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def from_toml(cls, text):
        try:
            import tomllib
        except ImportError:                          # pragma: no cover
            raise ScenarioError(
                "TOML grids need Python >= 3.11 (tomllib); "
                "use a JSON grid instead"
            ) from None
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ScenarioError(f"invalid TOML grid: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path):
        """Load a grid from a ``.json`` or ``.toml`` file."""
        import pathlib

        path = pathlib.Path(path)
        if not path.is_file():
            raise ScenarioError(f"grid file not found: {path}")
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            return cls.from_toml(text)
        return cls.from_json(text)
