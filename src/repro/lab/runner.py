"""Parallel sweep execution over scenario grids.

A :class:`SweepRunner` executes a :class:`~repro.lab.scenario.ScenarioGrid`
as a stream of *work units* — one per (design point, workload) — through
the compiled-trace batch engine:

- **sharding**: units are independent, so ``jobs > 1`` fans them out over
  a ``ProcessPoolExecutor``; every worker attaches the shared artifact
  store, so pipeline simulation and characterisation happen at most once
  per artifact *across the whole fleet* (first toucher writes, everyone
  else reads);
- **store warming**: the parent characterises each design point's LUT
  into the store up front, so workers never duplicate the most expensive
  step;
- **deterministic merge**: results are reassembled in canonical
  (design point, config, workload) order regardless of completion order,
  and each row is produced by exactly the same array math as the serial
  in-process ``evaluate_batch`` path — parallel results are bit-identical
  to serial ones;
- **resume**: every completed unit is checkpointed into a run manifest
  keyed by the grid fingerprint; re-running with ``resume=True`` skips
  finished units after an interrupt;
- **export**: the merged outcome is backed by a columnar
  :class:`~repro.api.frame.ResultFrame` (``result.frame``) and
  serialises to JSON (``write_json``) and flat CSV (``write_csv``) for
  dashboards;
- **self-limiting stores**: an optional ``store_budget_bytes`` runs an
  LRU ``gc`` pass after every merge, so long campaigns keep the artifact
  store bounded.

``SweepRunner.run`` is a legacy shim over
:meth:`repro.api.Session.sweep`; the Session drives the execution engine
(:meth:`SweepRunner._execute`) directly.
"""

import json
import os
import pathlib
import time
from dataclasses import dataclass, field

from repro.api.frame import EVALUATION_SCHEMA, ResultFrame
from repro.lab.jobqueue import ShardPool
from repro.lab.scenario import ScenarioGrid
from repro.lab.store import ArtifactStore, StoreStats
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import span as obs_span

#: Manifest layout version (independent of the artifact-store schema).
MANIFEST_VERSION = 1

#: Pending-unit count below which a ``jobs > 1`` sweep runs in-process:
#: spawning workers, re-importing the stack and re-attaching the store
#: costs hundreds of milliseconds, which a handful of units never earns
#: back (the PR-2 bench measured parallel_speedup 0.88 on an 18-unit
#: warm sweep).  The fallback is recorded on the run result
#: (``jobs_effective`` / ``parallel_fallback``).
PARALLEL_MIN_UNITS = 24


def result_to_dict(result, design_point, spec):
    """Canonical JSON row of one :class:`EvaluationResult`.

    One delegation to :func:`repro.api.session.evaluation_row` — the
    single definition of the row layout — so orchestrated sweep rows
    and in-process Session frames can never drift apart.  Floats are
    carried verbatim (``repr`` round-trip), so two runs are
    bit-identical exactly when their serialised rows are equal — the
    property the parallel-vs-serial acceptance check relies on.
    """
    from repro.api.session import evaluation_row

    return evaluation_row(
        result,
        variant=design_point.variant,
        voltage=design_point.voltage,
        config_label=spec.label,
        policy=spec.policy,
        generator=spec.generator,
        margin_percent=spec.margin_percent,
        pipeline_spec=design_point.pipeline_spec,
    )


# -- worker side -------------------------------------------------------------
#
# Workers are initialised once per process (grid + store attachment) and
# then cache one evaluation context — design, characterised DCA, concrete
# SweepConfigs — per design point, so a worker that receives many units
# of the same operating point builds it once.

_WORKER = {}


def _worker_init(grid_dict, store_root, engine="vector", telemetry=False,
                 ship_obs=False):
    from repro.dta.compiled import set_trace_store, simulation_count

    if telemetry:
        # subprocess shard of a traced sweep: record spans locally and
        # ship them back with each result batch (the parent merges them
        # onto its timeline as a per-worker track).  Always a fresh
        # tracer — under fork the child inherits the parent's, and
        # recording onto it would mislabel worker spans as the parent's.
        obs_trace.set_tracer(obs_trace.Tracer(label=f"worker-{os.getpid()}"))
    store = ArtifactStore(store_root) if store_root else None
    previous = set_trace_store(store) if store is not None else None
    _WORKER.clear()
    _WORKER.update(
        grid=ScenarioGrid.from_dict(grid_dict),
        store=store,
        previous_store=previous,
        engine=engine,
        contexts={},
        # baseline, not reset: simulations run before this sweep (other
        # tests, fork-inherited counters) must not be attributed to it
        sim_baseline=simulation_count(),
        # ship_obs marks a subprocess shard: counter deltas (and spans)
        # ride back through the result channel.  Serial in-process runs
        # leave it off — their increments land in the parent's ambient
        # registry/tracer directly, so shipping would double count.
        ship_obs=ship_obs,
        obs_baseline=obs_metrics.gather() if ship_obs else None,
    )


def _worker_teardown():
    """Restore the previously attached store (serial in-process runs share
    the module-global trace-store slot with their caller)."""
    from repro.dta.compiled import set_trace_store

    if _WORKER.get("store") is not None:
        set_trace_store(_WORKER.get("previous_store"))
    _WORKER.clear()


def _context_for(design_point):
    context = _WORKER["contexts"].get(design_point)
    if context is not None:
        return context

    from repro.core import DcaConfig, DynamicClockAdjustment
    from repro.flow.characterize import (
        CharacterizationResult,
        _characterize_impl,
    )

    design = design_point.build()
    store = _WORKER["store"]
    if store is not None:
        lut = store.get_lut(design)
    else:
        lut = _characterize_impl(design, keep_runs=False).lut
    dca = DynamicClockAdjustment(
        config=DcaConfig(variant=design.variant,
                         voltage=design_point.voltage),
        characterization=CharacterizationResult(design=design, lut=lut),
    )
    specs = _WORKER["grid"].config_specs()
    configs = [spec.make(dca) for spec in specs]
    context = (design, specs, configs)
    _WORKER["contexts"][design_point] = context
    return context


def _run_units(design_point, workloads):
    """Evaluate a batch of same-design-point units against every config.

    One :func:`~repro.flow.evaluate._evaluate_batch` call covers every
    workload in the batch — under the ``lockstep`` engine the uncached
    programs share a single batched ISS pass; under ``vector`` the batch
    degenerates to the per-program loop and is bit-identical to running
    units one at a time.  Returns ``(rows_per_unit, store_stats_delta,
    simulations_delta, obs_delta)`` — counters are snapshotted per batch
    so the parent can aggregate them across any number of workers;
    ``obs_delta`` is ``None`` except in subprocess shards, where it
    carries the worker's registry counter deltas and span buffer.
    """
    from repro.dta.compiled import simulation_count
    from repro.flow.evaluate import _evaluate_batch
    from repro.workloads import resolve_program

    grid = _WORKER["grid"]
    with obs_span("sweep.unit_batch", design_point=str(design_point.key),
                  units=len(workloads)):
        design, specs, configs = _context_for(design_point)
        programs = [resolve_program(workload) for workload in workloads]
        grid_results = _evaluate_batch(
            [program for program in programs], design, configs,
            max_cycles=grid.max_cycles,
            engine=_WORKER.get("engine", "vector"),
        )
        rows_per_unit = [
            [
                result_to_dict(config_row[position], design_point, spec)
                for spec, config_row in zip(specs, grid_results)
            ]
            for position in range(len(programs))
        ]
    store = _WORKER["store"]
    stats = store.stats.as_dict() if store is not None else None
    if store is not None:
        store.stats.reset()
    count = simulation_count()
    simulations = count - _WORKER["sim_baseline"]
    _WORKER["sim_baseline"] = count
    obs = None
    if _WORKER.get("ship_obs"):
        tracer = obs_trace.get_tracer()
        obs = {
            "counters": obs_metrics.delta_since(_WORKER["obs_baseline"]),
            "spans": tracer.drain() if tracer is not None else [],
        }
        _WORKER["obs_baseline"] = obs_metrics.gather()
    return rows_per_unit, stats, simulations, obs


def _run_unit(design_point, workload):
    """Single-unit wrapper over :func:`_run_units`."""
    rows_per_unit, stats, simulations, _ = _run_units(
        design_point, [workload]
    )
    return rows_per_unit[0], stats, simulations


def _run_units_task(payload):
    """Pool entry point: payload is
    ``(design_point, [(unit_id, workload), ...])``."""
    design_point, units = payload
    rows_per_unit, stats, simulations, obs = _run_units(
        design_point, [workload for _, workload in units]
    )
    unit_rows = [
        (unit_id, rows)
        for (unit_id, _), rows in zip(units, rows_per_unit)
    ]
    return unit_rows, stats, simulations, obs


# -- parent side -------------------------------------------------------------


@dataclass
class SweepRunResult:
    """Merged outcome of one sweep run, backed by a columnar frame.

    ``frame`` is the :class:`~repro.api.frame.ResultFrame` of merged
    evaluation rows (:data:`~repro.api.frame.EVALUATION_SCHEMA`);
    ``rows`` remains as the legacy list-of-dicts view of the same data.
    """

    grid: ScenarioGrid
    frame: ResultFrame
    seconds: float
    jobs: int
    units_total: int
    units_run: int
    units_resumed: int
    simulations: int
    #: Worker count actually used: ``jobs`` unless the small-run
    #: in-process fallback decided process-pool spin-up would cost more
    #: than it buys (see :data:`PARALLEL_MIN_UNITS`).
    jobs_effective: int = None
    #: True when ``jobs > 1`` was requested but the run executed
    #: in-process because too few units were pending.
    parallel_fallback: bool = False
    store_stats: StoreStats = None
    manifest_path: pathlib.Path = None
    _rows: list = field(default=None, repr=False, compare=False)

    @classmethod
    def from_rows(cls, rows, **kwargs):
        return cls(
            frame=ResultFrame.from_rows(rows, EVALUATION_SCHEMA), **kwargs
        )

    @property
    def rows(self):
        """Legacy row-dict view (cached) of :attr:`frame`."""
        if self._rows is None:
            self._rows = self.frame.to_rows()
        return self._rows

    def to_dict(self):
        return {
            "grid": self.grid.to_dict(),
            "fingerprint": self.grid.fingerprint(),
            "results": self.rows,
            "seconds": self.seconds,
            "jobs": self.jobs,
            "jobs_effective": (
                self.jobs if self.jobs_effective is None
                else self.jobs_effective
            ),
            "parallel_fallback": self.parallel_fallback,
            "units": {
                "total": self.units_total,
                "run": self.units_run,
                "resumed": self.units_resumed,
            },
            "simulations": self.simulations,
            "store": (
                self.store_stats.as_dict()
                if self.store_stats is not None else None
            ),
        }

    def write_json(self, path):
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        pathlib.Path(path).write_text(text + "\n")
        return text

    #: Flat columns exported to CSV (violation details stay in the JSON).
    CSV_COLUMNS = (
        "design_point", "config", "program", "num_cycles",
        "average_period_ps", "effective_frequency_mhz", "speedup_percent",
        "num_violations",
    )

    def write_csv(self, path):
        return self.frame.to_csv(path, columns=list(self.CSV_COLUMNS))

    @property
    def num_violations(self):
        return int(self.frame["num_violations"].sum())


class SweepRunner:
    """Executes a scenario grid, optionally sharded and store-backed.

    Parameters
    ----------
    grid:
        The :class:`~repro.lab.scenario.ScenarioGrid` to run.
    store:
        Optional :class:`~repro.lab.store.ArtifactStore` (or path);
        compiled traces and LUTs are read from / written through it.
    jobs:
        Worker processes; 1 runs serially in-process.
    manifest_path:
        Where to checkpoint completed units.  Defaults to
        ``<store>/manifests/<fingerprint>.json`` when a store is given;
        without a store (and without an explicit path) no manifest is
        written and resume is unavailable.
    store_budget_bytes:
        Optional size budget; after each merged run the store is
        LRU-``gc``-ed down to it, so long campaigns self-limit.
    engine:
        Evaluation engine for the units: ``"vector"`` (per-program
        compiled traces) or ``"lockstep"`` (uncached programs of a unit
        batch share one batched ISS pass; bit-identical rows).
    parallel_threshold:
        Minimum pending-unit count before ``jobs > 1`` actually spins up
        a process pool; below it the run falls back in-process (pool
        startup dominates small runs).  Defaults to
        :data:`PARALLEL_MIN_UNITS`; pass ``0`` to force the pool.
    """

    def __init__(self, grid, store=None, jobs=1, manifest_path=None,
                 store_budget_bytes=None, engine="vector",
                 parallel_threshold=None):
        self.grid = grid
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.jobs = max(1, int(jobs))
        self.store_budget_bytes = store_budget_bytes
        self.engine = engine
        self.parallel_threshold = (
            PARALLEL_MIN_UNITS if parallel_threshold is None
            else parallel_threshold
        )
        if manifest_path is None and store is not None:
            manifest_path = (
                store.root / "manifests" / f"{grid.fingerprint()}.json"
            )
        self.manifest_path = (
            pathlib.Path(manifest_path) if manifest_path else None
        )

    # -- units ---------------------------------------------------------------

    def units(self):
        """Canonical (unit_id, design_point, workload) triples.

        Unit ids use :attr:`DesignPoint.key` (full-precision voltage),
        so nearly-equal operating points never share an id."""
        return [
            (f"{point.key}/{workload}", point, workload)
            for point in self.grid.design_points()
            for workload in self.grid.workload_specs()
        ]

    # -- manifest ------------------------------------------------------------
    #
    # With a store, completed unit rows are checkpointed as individual
    # store results and the manifest holds only unit ids — rewriting it
    # after each unit stays O(units), not O(units x rows).  Without a
    # store the rows are inlined (no-store runs are small/ephemeral).

    _STORE_REF = "$store"

    def _unit_result_name(self, unit_id):
        return f"unit:{self.grid.fingerprint()}:{unit_id}"

    def _load_manifest(self):
        if self.manifest_path is None or not self.manifest_path.is_file():
            return {}
        try:
            payload = json.loads(self.manifest_path.read_text())
        except ValueError:
            return {}
        if (payload.get("version") != MANIFEST_VERSION
                or payload.get("fingerprint") != self.grid.fingerprint()):
            return {}
        completed = {}
        for unit_id, value in payload.get("completed", {}).items():
            if value == self._STORE_REF:
                rows = (
                    self.store.load_result(self._unit_result_name(unit_id))
                    if self.store is not None else None
                )
                if rows is None:      # missing/corrupt checkpoint: re-run
                    continue
                completed[unit_id] = rows
            else:
                completed[unit_id] = value
        return completed

    def _checkpoint_unit(self, completed, unit_id, rows):
        completed[unit_id] = rows
        if self.manifest_path is None:
            return
        if self.store is not None:
            self.store.save_result(self._unit_result_name(unit_id), rows)
            payload_completed = dict.fromkeys(completed, self._STORE_REF)
        else:
            payload_completed = completed
        self.manifest_path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": MANIFEST_VERSION,
            "fingerprint": self.grid.fingerprint(),
            "grid": self.grid.to_dict(),
            "completed": payload_completed,
        }
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.manifest_path)

    # -- execution -----------------------------------------------------------

    def warm_luts(self):
        """Characterise every design point's LUT into the store up front,
        so parallel workers never duplicate gate-level simulation.

        Characterisation itself is sharded over the runner's worker count:
        each program's gate-sim batch lands in the store's per-program
        ``charlut`` cache and the merged LUT is assembled in canonical
        suite order, so the result is bit-identical to a serial
        characterisation — and a killed warm-up resumes by recomputing
        only the missing batches."""
        if self.store is None:
            return
        with obs_span("sweep.warm_luts",
                      design_points=len(self.grid.design_points())):
            for point in self.grid.design_points():
                self.store.get_lut(point.build(), jobs=self.jobs)

    def run(self, resume=False, progress=None):
        """Execute the grid; returns a :class:`SweepRunResult`.

        .. deprecated::
            Legacy shim over :meth:`repro.api.Session.sweep`
            (bit-identical); new code should build a Session once and
            sweep through it.

        ``resume=True`` reuses completed units from the manifest of a
        previous (interrupted) run of the *same* grid; a manifest from a
        different grid fingerprint is ignored.
        """
        from repro.api import Session

        session = Session(
            store=self.store, jobs=self.jobs,
            store_budget_bytes=self.store_budget_bytes,
        )
        return session.sweep(
            self.grid, resume=resume, progress=progress, runner=self
        )

    def _execute(self, resume=False, progress=None, on_unit=None):
        """The execution engine behind :meth:`run` /
        :meth:`repro.api.Session.sweep`.

        ``on_unit(done, total)`` is called after every completed unit
        (and once up front with the resumed count) — the hook behind
        ``repro sweep --progress``.
        """
        start = time.perf_counter()
        stats = StoreStats() if self.store is not None else None
        simulations = 0

        completed = self._load_manifest() if resume else {}
        units = self.units()
        pending = [unit for unit in units if unit[0] not in completed]
        resumed = len(units) - len(pending)

        jobs_effective = self.jobs
        parallel_fallback = False
        if (self.jobs > 1 and len(pending) < self.parallel_threshold
                and not obs_trace.is_enabled()):
            # a traced parallel sweep must show actual parallel execution
            # (per-worker tracks), so tracing bypasses the small-run
            # in-process fallback; untraced runs keep the perf heuristic
            jobs_effective = 1
            parallel_fallback = True

        if progress:
            progress(
                f"{self.grid.name}: {len(units)} units "
                f"({resumed} resumed), {len(self.grid.config_specs())} "
                f"configs, jobs={self.jobs}"
                + (" (in-process: small run)" if parallel_fallback else "")
            )
        if on_unit:
            on_unit(resumed, len(units))

        self.warm_luts()
        if stats is not None:
            stats.merge(self.store.stats)
            self.store.stats.reset()

        if pending:
            done_state = {"done": resumed, "total": len(units)}

            def unit_done():
                done_state["done"] += 1
                if on_unit:
                    on_unit(done_state["done"], done_state["total"])

            if jobs_effective == 1:
                outcomes = self._run_serial(pending, completed, progress,
                                            unit_done)
            else:
                outcomes = self._run_parallel(pending, completed, progress,
                                              jobs_effective, unit_done)
            for unit_stats, unit_simulations, obs in outcomes:
                if stats is not None and unit_stats is not None:
                    stats.merge(unit_stats)
                simulations += unit_simulations
                if obs is not None:
                    # subprocess shard: fold the worker's counter deltas
                    # into the parent registry (the historical fix for
                    # counters vanishing in --jobs N sweeps) and its
                    # spans onto the parent timeline
                    obs_metrics.merge(obs["counters"])
                    obs_trace.merge_worker_spans(obs["spans"])

        with obs_span("sweep.merge", units=len(units)):
            rows = self._merge(completed)
        result = SweepRunResult.from_rows(
            rows,
            grid=self.grid,
            seconds=time.perf_counter() - start,
            jobs=self.jobs,
            units_total=len(units),
            units_run=len(pending),
            units_resumed=resumed,
            simulations=simulations,
            jobs_effective=jobs_effective,
            parallel_fallback=parallel_fallback,
            store_stats=stats,
            manifest_path=self.manifest_path,
        )
        if self.store is not None:
            self.store.save_result(
                f"sweep:{self.grid.fingerprint()}", result.to_dict()
            )
            # self-limiting campaigns: LRU-evict down to the budget after
            # every merge (checkpoints and results are all recomputable)
            if self.store_budget_bytes is not None:
                self.store.gc(max_bytes=self.store_budget_bytes)
        return result

    @staticmethod
    def _grouped(pending):
        """Group pending units by design point, preserving canonical
        order (``units()`` is design-point-major, so groups are runs)."""
        groups = []
        for unit_id, point, workload in pending:
            if groups and groups[-1][0] == point:
                groups[-1][1].append((unit_id, workload))
            else:
                groups.append((point, [(unit_id, workload)]))
        return groups

    def _run_serial(self, pending, completed, progress, unit_done=None):
        store_root = str(self.store.root) if self.store is not None else None
        _worker_init(self.grid.to_dict(), store_root, self.engine)
        outcomes = []
        try:
            for point, group in self._grouped(pending):
                rows_per_unit, unit_stats, unit_simulations, obs = (
                    _run_units(point, [workload for _, workload in group])
                )
                outcomes.append((unit_stats, unit_simulations, obs))
                for (unit_id, _), rows in zip(group, rows_per_unit):
                    self._checkpoint_unit(completed, unit_id, rows)
                    if progress:
                        progress(f"  done {unit_id}")
                    if unit_done:
                        unit_done()
        finally:
            _worker_teardown()
        return outcomes

    def _run_parallel(self, pending, completed, progress, jobs,
                      unit_done=None):
        store_root = str(self.store.root) if self.store is not None else None
        # shard each design point's units into ~jobs batches, so every
        # worker gets one batched ISS pass per (design point, shard)
        tasks = []
        for point, group in self._grouped(pending):
            chunk = max(1, -(-len(group) // jobs))
            for index in range(0, len(group), chunk):
                tasks.append((point, group[index:index + chunk]))
        pool = ShardPool(
            jobs,
            initializer=_worker_init,
            initargs=(self.grid.to_dict(), store_root, self.engine,
                      obs_trace.is_enabled(), True),
        )
        outcomes = []
        for unit_rows, unit_stats, unit_simulations, obs in pool.run(
                _run_units_task, tasks):
            outcomes.append((unit_stats, unit_simulations, obs))
            for unit_id, rows in unit_rows:
                self._checkpoint_unit(completed, unit_id, rows)
                if progress:
                    progress(f"  done {unit_id}")
                if unit_done:
                    unit_done()
        return outcomes

    def _merge(self, completed):
        """Reassemble rows in canonical (design point, config, workload)
        order — independent of unit completion order."""
        specs = self.grid.config_specs()
        workloads = self.grid.workload_specs()
        rows = []
        for point in self.grid.design_points():
            for config_index in range(len(specs)):
                for workload in workloads:
                    unit_id = f"{point.key}/{workload}"
                    rows.append(completed[unit_id][config_index])
        return rows
