"""Process-safe work distribution, extracted from the sweep runner.

Two building blocks shared by :class:`~repro.lab.runner.SweepRunner`
and the multi-tenant sweep service (:mod:`repro.serve`):

- :class:`ShardPool` — fan picklable tasks out to a
  ``ProcessPoolExecutor`` and stream results back as they complete.
  This is the shard engine that used to live inline in
  ``SweepRunner._run_parallel``; the runner now consumes it, and any
  other orchestrator (the sweep service's per-job workers, future batch
  frontends) gets the same pool discipline — worker initialisation,
  worker-count capping, completion-order streaming, eager error
  propagation — without re-implementing it.
- :class:`BoundedJobQueue` — a thread-safe bounded FIFO with
  fingerprint-keyed deduplication.  The admission-control half of the
  service: submitting a key already queued or running returns the
  existing entry instead of enqueueing twice (two tenants submitting
  the same grid share one computation), and submissions past the bound
  raise :class:`QueueFull` (the HTTP layer turns that into 429
  backpressure).

Both are engine-agnostic: nothing here imports the simulator stack, so
the queue discipline is testable without characterising anything.
"""

import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed

__all__ = ["BoundedJobQueue", "QueueFull", "ShardPool"]


class ShardPool:
    """Stream task results from a process pool in completion order.

    Parameters
    ----------
    jobs:
        Maximum worker processes; the pool is additionally capped at the
        task count, so tiny batches never spawn idle workers.
    initializer / initargs:
        Per-worker-process initialisation (e.g. attach the shared
        artifact store), exactly as ``ProcessPoolExecutor`` takes them.
    """

    def __init__(self, jobs, initializer=None, initargs=()):
        self.jobs = max(1, int(jobs))
        self.initializer = initializer
        self.initargs = initargs

    def run(self, fn, tasks):
        """Yield ``fn(task)`` results as workers finish them.

        The generator owns the pool: exhausting it (or closing it on an
        error) shuts the executor down.  A task that raises re-raises
        here on first observation — remaining futures are cancelled by
        the executor's shutdown.
        """
        tasks = list(tasks)
        if not tasks:
            return
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(tasks)),
            initializer=self.initializer,
            initargs=self.initargs,
        ) as pool:
            futures = [pool.submit(fn, task) for task in tasks]
            for future in as_completed(futures):
                yield future.result()


class QueueFull(Exception):
    """The bounded queue is at capacity — apply backpressure."""


class BoundedJobQueue:
    """Thread-safe bounded FIFO with fingerprint deduplication.

    Entries are arbitrary objects filed under a caller-chosen ``key``
    (the service uses ``kind:grid-fingerprint``).  An entry stays
    "active" — and keeps deduplicating new submissions onto itself —
    from :meth:`submit` until :meth:`finish`; :meth:`claim` hands queued
    entries to workers in FIFO order without ending their dedup window.
    """

    def __init__(self, limit):
        if limit < 1:
            raise ValueError("queue limit must be at least 1")
        self.limit = int(limit)
        self._lock = threading.Lock()
        self._active = OrderedDict()        # key -> entry (queued/running)
        self._pending = OrderedDict()       # key -> entry (queued only)

    def submit(self, key, make_entry):
        """File ``make_entry()`` under ``key``; returns
        ``(entry, deduped)``.

        A submission whose key is already active returns the existing
        entry with ``deduped=True`` and consumes no capacity.  A fresh
        submission past the bound raises :class:`QueueFull`.
        """
        with self._lock:
            existing = self._active.get(key)
            if existing is not None:
                return existing, True
            if len(self._active) >= self.limit:
                raise QueueFull(
                    f"job queue is full ({self.limit} active jobs)"
                )
            entry = make_entry()
            self._active[key] = entry
            self._pending[key] = entry
            return entry, False

    def claim(self):
        """Pop the oldest queued entry for execution (``None`` when no
        entry is waiting).  The entry stays active — still deduplicating
        — until :meth:`finish`."""
        with self._lock:
            if not self._pending:
                return None
            _, entry = self._pending.popitem(last=False)
            return entry

    def finish(self, key):
        """Retire ``key``: frees its capacity and ends its dedup window
        (later submissions of the same key create a fresh entry)."""
        with self._lock:
            self._pending.pop(key, None)
            return self._active.pop(key, None)

    def __len__(self):
        with self._lock:
            return len(self._active)

    @property
    def queued(self):
        """Entries waiting to be claimed."""
        with self._lock:
            return len(self._pending)
