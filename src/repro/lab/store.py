"""Content-addressed on-disk artifact store.

The store persists the two expensive intermediates of the evaluation
pipeline — compiled pipeline traces and characterised delay LUTs — plus
merged sweep results, so that cross-process runs (CLI invocations, CI
jobs, parallel sweep workers) skip pipeline simulation and gate-level
characterisation entirely.

Keys are content hashes: a compiled trace is addressed by the program's
full word image × the design operating point (variant, voltage) × the
cycle budget × the store schema version; a LUT by the operating point ×
the extraction threshold × the schema version.  Anything that could
change the artifact changes the key, so invalidation is automatic —
bumping :data:`SCHEMA_VERSION`, re-characterising at another voltage, or
editing a program each simply miss and recompute.  Corrupted files (torn
writes, truncation) are detected on load, counted, and fall back to
recompute; writes are atomic (temp file + ``os.replace``).

Attach a store to the in-process compiled-trace cache with
:func:`repro.dta.compiled.set_trace_store`; every consumer of
``evaluate_batch`` then reads and writes through it transparently.
"""

import hashlib
import json
import os
import pathlib
import stat as statmod
import tempfile
import threading
from dataclasses import dataclass

import numpy as np

from repro.dta.compiled import CompiledTrace
from repro.dta.extraction import DEFAULT_MIN_OCCURRENCES
from repro.dta.lut import DelayLUT
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span

#: Bump when anything that *computes* an artifact changes — on-disk
#: layout, the timing model (profiles/excitation/library scaling), the
#: pipeline simulator, or the characterisation suite.  Keys hash program
#: content and operating point, not the code, so a stale version here is
#: the only way a persistent store can serve wrong results.
SCHEMA_VERSION = 1

#: Artifact kinds tracked by :class:`StoreStats`.  ``lut`` is a design's
#: merged characterisation; ``charlut`` is one program's characterisation
#: batch (the unit of sharded/resumable characterisation); ``frame`` is a
#: persisted :class:`~repro.api.frame.ResultFrame`; ``model`` is a
#: trained learned-policy artifact (:class:`~repro.ml.model.LearnedModel`).
KINDS = ("trace", "lut", "charlut", "result", "frame", "model")

#: Events tracked per kind.
EVENTS = ("hits", "misses", "writes", "corrupt")

#: Array fields of the compiled-trace ``.npz`` payload.
_TRACE_ARRAYS = (
    "class_ids", "bubble", "held", "stall", "redirect", "delays",
)


class StoreCorruption(Exception):
    """A cache file exists but cannot be decoded (internal signal)."""


@dataclass
class GcResult:
    """Outcome of one :meth:`ArtifactStore.gc` pass.

    ``removed_*`` counts only *successful* unlinks.  Files another
    process evicted mid-scan (gone between scan and unlink) land in
    ``vanished_files``; unlinks that failed for any other reason (the
    file still exists but could not be removed) land in
    ``failed_files`` — the budget may still be exceeded when that is
    nonzero.
    """

    scanned_files: int = 0
    kept_files: int = 0
    kept_bytes: int = 0
    removed_files: int = 0
    removed_bytes: int = 0
    vanished_files: int = 0
    failed_files: int = 0

    def summary(self):
        text = (
            f"kept {self.kept_files} files ({self.kept_bytes} B), "
            f"removed {self.removed_files} files ({self.removed_bytes} B)"
        )
        if self.vanished_files:
            text += f", {self.vanished_files} vanished"
        if self.failed_files:
            text += f", {self.failed_files} FAILED to remove"
        return text


#: One lock for every :class:`StoreStats` instance: a module-level lock
#: keeps the objects picklable (they cross the multiprocessing result
#: channel as part of ``SweepRunResult``) and the counters are far too
#: cold for contention to matter.
_STATS_LOCK = threading.Lock()


class StoreStats:
    """Hit/miss/write/corruption counters, per artifact kind.

    These counters are the observable proof of the store's contract: a
    warm full-suite sweep must show zero ``trace``/``lut`` misses (and
    :func:`repro.dta.compiled.simulation_count` must stay zero).

    Thread-safe: the sweep service shares one store (and therefore one
    stats object) between its event loop, job-watcher threads and the
    span-merge path, so the ``+=`` updates must not lose increments.
    """

    def __init__(self):
        self.counts = {kind: dict.fromkeys(EVENTS, 0) for kind in KINDS}

    def record(self, kind, event):
        with _STATS_LOCK:
            self.counts[kind][event] += 1
        # mirror into the process-wide registry: per-store objects come
        # and go (workers, sessions), the registry view survives them.
        # merge() deliberately does NOT mirror — merged worker counters
        # reach the parent registry through the obs delta channel.
        obs_metrics.inc(f"store.{kind}.{event}")

    def get(self, kind, event):
        return self.counts[kind][event]

    def reset(self):
        with _STATS_LOCK:
            for kind in KINDS:
                for event in EVENTS:
                    self.counts[kind][event] = 0

    def as_dict(self):
        with _STATS_LOCK:
            return {
                kind: dict(events) for kind, events in self.counts.items()
            }

    def merge(self, other):
        """Accumulate counters from another stats object or its dict."""
        counts = (
            other.as_dict() if isinstance(other, StoreStats) else other
        )
        with _STATS_LOCK:
            for kind, events in counts.items():
                for event, value in events.items():
                    self.counts[kind][event] += value

    def summary(self):
        return "; ".join(
            "{}: {}".format(
                kind,
                "/".join(f"{self.counts[kind][e]} {e}" for e in EVENTS),
            )
            for kind in KINDS
        )


def _digest(payload):
    """SHA-256 of a canonical-JSON payload of primitives."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def program_fingerprint(program):
    """Content hash of an assembled program (name, entry, word image)."""
    return _digest([
        program.name,
        program.entry,
        sorted(program.words.items()),
    ])


def design_fingerprint(design):
    """Operating-point hash (variant, supply voltage, pipeline spec).

    The default pipeline spec is omitted from the payload, so every
    artifact keyed before specs existed keeps its fingerprint byte for
    byte; any other microarchitecture appends its spec digest and gets
    distinct trace/LUT/model keys for free.
    """
    payload = [design.variant.value, design.library.voltage]
    spec = getattr(design, "pipeline_spec", None)
    if spec is not None and not spec.is_default:
        payload.append(spec.digest)
    return _digest(payload)


class ArtifactStore:
    """On-disk cache of compiled traces, delay LUTs and sweep results."""

    def __init__(self, root, schema_version=SCHEMA_VERSION):
        self.root = pathlib.Path(root)
        self.schema_version = schema_version
        self.stats = StoreStats()

    # -- paths ---------------------------------------------------------------

    def _path(self, kind, key, suffix):
        return self.root / kind / f"{key}{suffix}"

    def trace_path(self, program, design, max_cycles):
        key = _digest([
            "trace", self.schema_version,
            program_fingerprint(program), design_fingerprint(design),
            max_cycles,
        ])
        return self._path("traces", key, ".npz")

    def lut_path(self, design, min_occurrences):
        key = _digest([
            "lut", self.schema_version,
            design_fingerprint(design), min_occurrences,
        ])
        return self._path("luts", key, ".json")

    def result_path(self, name):
        key = _digest(["result", self.schema_version, name])
        return self._path("results", key, ".json")

    def _write_atomic(self, path, writer):
        """Write via a sibling temp file + ``os.replace`` so readers never
        see a torn artifact."""
        path.parent.mkdir(parents=True, exist_ok=True)
        # keep the real suffix so np.savez does not append another ".npz"
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=f".tmp{path.suffix}"
        )
        os.close(handle)
        try:
            writer(tmp_name)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- compiled traces -----------------------------------------------------

    def save_compiled_trace(self, compiled, program, design, max_cycles):
        """Persist a compiled trace (delays are materialised first)."""
        path = self.trace_path(program, design, max_cycles)
        with obs_span("store.trace.save", program=compiled.program_name):
            self._save_compiled_trace(path, compiled)
        self.stats.record("trace", "writes")

    def _save_compiled_trace(self, path, compiled):
        delays = compiled.delays   # force the lazy matrix before freezing
        payload = {
            "schema": np.int64(self.schema_version),
            "program_name": np.str_(compiled.program_name),
            "num_cycles": np.int64(compiled.num_cycles),
            "num_retired": np.int64(compiled.num_retired),
            "class_names": np.array(compiled.class_names, dtype=np.str_),
            "variant": np.str_(compiled.operating_point[0]),
            "voltage": np.float64(compiled.operating_point[1]),
            "class_ids": compiled.class_ids,
            "bubble": compiled.bubble,
            "held": compiled.held,
            "stall": compiled.stall,
            "redirect": compiled.redirect,
            "delays": delays,
        }
        if compiled.spec is not None:   # default-spec payloads stay as-is
            payload["pipeline_spec"] = np.str_(
                json.dumps(compiled.spec.to_dict(), sort_keys=True)
            )
        self._write_atomic(path, lambda tmp: np.savez(tmp, **payload))

    def load_compiled_trace(self, program, design, max_cycles):
        """Rehydrate a compiled trace, or ``None`` on miss/corruption.

        Rehydrated traces carry the materialised delay matrix but no
        per-record trace and no excitation model — they serve the
        vectorized policy protocol (which every bundled policy
        implements) bit-identically.
        """
        path = self.trace_path(program, design, max_cycles)
        if not path.exists():
            self.stats.record("trace", "misses")
            return None
        try:
            with obs_span("store.trace.load", program=program.name):
                compiled = self._read_trace(path)
        except StoreCorruption:
            self.stats.record("trace", "corrupt")
            self.stats.record("trace", "misses")
            self._discard(path)
            return None
        self.stats.record("trace", "hits")
        self._touch(path)
        return compiled

    def _read_trace(self, path):
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["schema"]) != self.schema_version:
                    raise StoreCorruption("schema mismatch")
                num_cycles = int(data["num_cycles"])
                arrays = {name: data[name] for name in _TRACE_ARRAYS}
                for name in _TRACE_ARRAYS:
                    if arrays[name].shape[0] != num_cycles:
                        raise StoreCorruption(f"truncated array {name}")
                spec = None
                point = (str(data["variant"]), float(data["voltage"]))
                if "pipeline_spec" in data.files:
                    from repro.sim.spec import PipelineSpec

                    spec = PipelineSpec.from_dict(
                        json.loads(str(data["pipeline_spec"]))
                    )
                    point = point + (spec.digest,)
                return CompiledTrace(
                    program_name=str(data["program_name"]),
                    num_cycles=num_cycles,
                    num_retired=int(data["num_retired"]),
                    class_names=tuple(str(n) for n in data["class_names"]),
                    class_ids=arrays["class_ids"],
                    bubble=arrays["bubble"],
                    held=arrays["held"],
                    stall=arrays["stall"],
                    redirect=arrays["redirect"],
                    trace=None,
                    excitation=None,
                    operating_point=point,
                    spec=spec,
                    _delays=arrays["delays"],
                )
        except StoreCorruption:
            raise
        except Exception as error:   # zip damage, missing keys, bad dtypes
            raise StoreCorruption(str(error)) from error

    #: Discard outcomes (see :meth:`_discard`).
    _REMOVED, _VANISHED, _FAILED = "removed", "vanished", "failed"

    def _discard(self, path):
        """Best-effort unlink; reports what actually happened so callers
        (:meth:`gc`) never count a failed removal as an eviction.

        Returns ``_REMOVED`` when this call deleted the file,
        ``_VANISHED`` when another process got there first, and
        ``_FAILED`` when the file persists but could not be removed.
        """
        try:
            path.unlink()
        except FileNotFoundError:
            return self._VANISHED
        except OSError:
            return self._FAILED
        return self._REMOVED

    def _touch(self, path):
        """Refresh an artifact's mtime on hit, making mtime an LRU clock
        for :meth:`gc`."""
        try:
            os.utime(path)
        except OSError:
            pass

    # -- characterised LUTs --------------------------------------------------

    def save_lut(self, lut, design, min_occurrences=DEFAULT_MIN_OCCURRENCES):
        path = self.lut_path(design, min_occurrences)
        with obs_span("store.lut.save"):
            document = json.dumps({
                "schema": self.schema_version,
                "variant": design.variant.value,
                "voltage": design.library.voltage,
                "lut": json.loads(lut.to_json()),
            }, indent=2, sort_keys=True)
            self._write_atomic(
                path, lambda tmp: pathlib.Path(tmp).write_text(document)
            )
        self.stats.record("lut", "writes")

    def load_lut(self, design, min_occurrences=DEFAULT_MIN_OCCURRENCES):
        path = self.lut_path(design, min_occurrences)
        if not path.exists():
            self.stats.record("lut", "misses")
            return None
        try:
            with obs_span("store.lut.load"):
                payload = json.loads(path.read_text())
                if payload.get("schema") != self.schema_version:
                    raise StoreCorruption("schema mismatch")
                lut = DelayLUT.from_json(json.dumps(payload["lut"]))
        except (StoreCorruption, KeyError, TypeError, ValueError, OSError):
            self.stats.record("lut", "corrupt")
            self.stats.record("lut", "misses")
            self._discard(path)
            return None
        self.stats.record("lut", "hits")
        self._touch(path)
        return lut

    def get_lut(self, design, min_occurrences=DEFAULT_MIN_OCCURRENCES,
                jobs=1):
        """Characterised LUT of a design, characterising at most once per
        (operating point, threshold, schema) across every process sharing
        this store directory.

        Characterisation runs through the per-program ``charlut`` cache:
        each program's gate-sim batch is stored individually (sharded over
        ``jobs`` workers when asked), so an interrupted characterisation
        resumes by recomputing only the missing batches, and the merged
        LUT — assembled in canonical suite order — is bit-identical to an
        in-process :func:`repro.flow.characterize.characterize`.

        Only the default characterisation suite is cached — callers with
        custom program sets should run
        :func:`repro.flow.characterize.characterize` directly.
        """
        lut = self.load_lut(design, min_occurrences)
        if lut is None:
            from repro.flow.characterize import _characterize_impl

            lut = _characterize_impl(
                design, min_occurrences=min_occurrences, keep_runs=False,
                store=self, jobs=jobs,
            ).lut
            self.save_lut(lut, design, min_occurrences)
        return lut

    # -- per-program characterisation batches --------------------------------

    def char_lut_path(self, design, program,
                      min_occurrences=DEFAULT_MIN_OCCURRENCES,
                      sim_period_ps=None):
        key = _digest([
            "charlut", self.schema_version,
            design_fingerprint(design), program_fingerprint(program),
            min_occurrences, sim_period_ps,
        ])
        return self._path("charluts", key, ".json")

    def save_char_lut(self, lut, num_cycles, design, program,
                      min_occurrences=DEFAULT_MIN_OCCURRENCES,
                      sim_period_ps=None):
        """Persist one program's characterisation batch."""
        path = self.char_lut_path(
            design, program, min_occurrences, sim_period_ps
        )
        with obs_span("store.charlut.save", program=program.name):
            document = json.dumps({
                "schema": self.schema_version,
                "program": program.name,
                "num_cycles": num_cycles,
                "lut": json.loads(lut.to_json()),
            }, indent=2, sort_keys=True)
            self._write_atomic(
                path, lambda tmp: pathlib.Path(tmp).write_text(document)
            )
        self.stats.record("charlut", "writes")

    def load_char_lut(self, design, program,
                      min_occurrences=DEFAULT_MIN_OCCURRENCES,
                      sim_period_ps=None):
        """One cached characterisation batch: ``(lut, num_cycles)`` or
        ``None`` on miss/corruption."""
        path = self.char_lut_path(
            design, program, min_occurrences, sim_period_ps
        )
        if not path.exists():
            self.stats.record("charlut", "misses")
            return None
        try:
            with obs_span("store.charlut.load", program=program.name):
                payload = json.loads(path.read_text())
                if payload.get("schema") != self.schema_version:
                    raise StoreCorruption("schema mismatch")
                lut = DelayLUT.from_json(json.dumps(payload["lut"]))
                num_cycles = int(payload["num_cycles"])
        except (StoreCorruption, KeyError, TypeError, ValueError, OSError):
            self.stats.record("charlut", "corrupt")
            self.stats.record("charlut", "misses")
            self._discard(path)
            return None
        self.stats.record("charlut", "hits")
        self._touch(path)
        return lut, num_cycles

    # -- sweep results -------------------------------------------------------

    # -- garbage collection --------------------------------------------------

    @staticmethod
    def _is_temp(path):
        """True for :meth:`_write_atomic` scratch files (``mkstemp``
        names carry a ``.tmp`` component before the real suffix) and
        the runner's manifest ``.tmp`` files.  GC must never touch them:
        evicting one breaks the in-flight writer's ``os.replace``."""
        return any(
            suffix.startswith(".tmp") for suffix in path.suffixes
        )

    def gc(self, max_bytes, dry_run=False, paths=None):
        """Least-recently-used eviction down to a size budget.

        Artifact mtimes double as the LRU clock (loads refresh them via
        :meth:`_touch`), so sorting by mtime and keeping the newest files
        until the budget is filled evicts exactly the least recently used
        artifacts.  Everything under the store root is eligible —
        compiled traces, merged and per-program LUTs, results and run
        manifests are all recomputable by construction — *except*
        in-flight ``.tmp`` files from concurrent writers, which are
        skipped entirely.

        Safe against concurrent processes mutating the same store root:
        entries that vanish between scan and ``stat``/unlink are
        tolerated and reported (``vanished_files``), and only files this
        pass actually unlinked count as removed.

        ``paths`` restricts eligibility to an explicit iterable of files
        (still LRU-ordered by mtime) — the hook behind per-tenant frame
        budgets in :mod:`repro.serve`.

        Returns a :class:`GcResult`; ``dry_run`` reports without deleting.
        """
        if max_bytes < 0:
            raise ValueError("size budget cannot be negative")
        if paths is None:
            candidates = (
                self.root.rglob("*") if self.root.is_dir() else ()
            )
        else:
            candidates = (pathlib.Path(p) for p in paths)
        entries = []
        result = GcResult()
        for path in candidates:
            if self._is_temp(path):
                continue
            try:
                stat = path.stat()
            except OSError:
                # evicted by a concurrent process between scan and stat
                result.vanished_files += 1
                continue
            if statmod.S_ISREG(stat.st_mode):
                entries.append(
                    (stat.st_mtime, str(path), stat.st_size, path)
                )
        # newest first; path tiebreak keeps the order deterministic
        entries.sort(key=lambda entry: (-entry[0], entry[1]))
        result.scanned_files = len(entries)
        kept = 0
        evicting = False
        for _, _, size, path in entries:
            # strict LRU: the first artifact that overflows the budget
            # marks the recency cut — everything older goes too, so a
            # stale small file can never outlive a fresher large one
            if not evicting and kept + size <= max_bytes:
                kept += size
                result.kept_files += 1
                result.kept_bytes += size
            else:
                evicting = True
                if dry_run:
                    result.removed_files += 1
                    result.removed_bytes += size
                    continue
                outcome = self._discard(path)
                if outcome == self._REMOVED:
                    result.removed_files += 1
                    result.removed_bytes += size
                elif outcome == self._VANISHED:
                    result.vanished_files += 1
                else:
                    result.failed_files += 1
        return result

    def save_result(self, name, payload):
        """Persist a JSON-serialisable result document under ``name``."""
        path = self.result_path(name)
        document = json.dumps(payload, indent=2, sort_keys=True)
        self._write_atomic(
            path, lambda tmp: pathlib.Path(tmp).write_text(document)
        )
        self.stats.record("result", "writes")

    def load_result(self, name):
        path = self.result_path(name)
        if not path.exists():
            self.stats.record("result", "misses")
            return None
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            self.stats.record("result", "corrupt")
            self.stats.record("result", "misses")
            self._discard(path)
            return None
        self.stats.record("result", "hits")
        self._touch(path)
        return payload

    # -- result frames -------------------------------------------------------

    def frame_path(self, name):
        key = _digest(["frame", self.schema_version, name])
        return self._path("frames", key, ".json")

    def save_frame(self, name, frame):
        """Persist a :class:`~repro.api.frame.ResultFrame` under ``name``
        (lossless: float bits survive the JSON round-trip)."""
        path = self.frame_path(name)
        document = json.dumps({
            "schema": self.schema_version,
            "frame": frame.to_dict(),
        }, indent=2, sort_keys=True)
        self._write_atomic(
            path, lambda tmp: pathlib.Path(tmp).write_text(document)
        )
        self.stats.record("frame", "writes")

    def load_frame(self, name):
        """Rehydrate a stored frame, or ``None`` on miss/corruption."""
        from repro.api.frame import ResultFrame

        path = self.frame_path(name)
        if not path.exists():
            self.stats.record("frame", "misses")
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != self.schema_version:
                raise StoreCorruption("schema mismatch")
            frame = ResultFrame.from_dict(payload["frame"])
        except (StoreCorruption, KeyError, TypeError, ValueError, OSError):
            self.stats.record("frame", "corrupt")
            self.stats.record("frame", "misses")
            self._discard(path)
            return None
        self.stats.record("frame", "hits")
        self._touch(path)
        return frame

    # -- learned-policy models -----------------------------------------------

    def model_path(self, name):
        key = _digest(["model", self.schema_version, name])
        return self._path("models", key, ".npz")

    def save_model(self, name, model):
        """Persist a :class:`~repro.ml.model.LearnedModel` under ``name``
        (byte-deterministic ``.npz``, so equal trainings re-write equal
        artifacts)."""
        path = self.model_path(name)
        data = model.to_bytes()
        self._write_atomic(
            path, lambda tmp: pathlib.Path(tmp).write_bytes(data)
        )
        self.stats.record("model", "writes")

    def load_model(self, name):
        """Rehydrate a stored model, or ``None`` on miss/corruption.

        Corruption (torn write, schema/feature-spec mismatch) is
        counted, the artifact discarded, and the caller retrains — the
        same recompute contract as traces and LUTs (see
        :func:`repro.ml.train.get_or_train_model`).
        """
        from repro.ml.model import LearnedModel, ModelError

        path = self.model_path(name)
        if not path.exists():
            self.stats.record("model", "misses")
            return None
        try:
            model = LearnedModel.from_bytes(
                path.read_bytes(), source=str(path)
            )
        except (ModelError, OSError):
            self.stats.record("model", "corrupt")
            self.stats.record("model", "misses")
            self._discard(path)
            return None
        self.stats.record("model", "hits")
        self._touch(path)
        return model
