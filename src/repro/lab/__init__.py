"""repro.lab — sweep orchestration with a persistent artifact store.

The lab turns one-shot in-process evaluation into an experiment system:

- :mod:`repro.lab.store` — a content-addressed on-disk cache for compiled
  pipeline traces, characterised delay LUTs and merged sweep results,
  keyed by program content × design operating point × schema version.
  Cross-process runs (CLI, CI, workers) skip simulation and
  characterisation entirely once the store is warm.
- :mod:`repro.lab.scenario` — declarative :class:`ScenarioGrid` specs
  that cross-product policies × generators × margins × voltages ×
  variants × workloads (loadable from JSON/TOML) into the
  ``SweepConfig`` stream the batch engine consumes.
- :mod:`repro.lab.runner` — a multiprocessing :class:`SweepRunner` that
  shards (design point, program) work units across workers, warms the
  store, merges results deterministically, resumes interrupted runs from
  a manifest, and emits JSON/CSV for dashboards.
"""

from repro.lab.runner import SweepRunner, SweepRunResult
from repro.lab.scenario import ConfigSpec, DesignPoint, ScenarioGrid
from repro.lab.store import ArtifactStore, StoreStats

__all__ = [
    "ArtifactStore",
    "ConfigSpec",
    "DesignPoint",
    "ScenarioGrid",
    "StoreStats",
    "SweepRunner",
    "SweepRunResult",
]
