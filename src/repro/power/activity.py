"""Switching-activity-based power refinement.

The paper extracts power from gate-level switching activity (VCD -> power
analysis in Fig. 2).  The coarse model in :mod:`repro.power.model` assumes
an average activity; this module refines the *dynamic* component per
workload from the pipeline trace:

- datapath activity: Hamming distance of consecutive EX operand pairs
  (the operand buses drive the widest cones);
- control activity: stage occupancy changes, redirects and stalls;
- multiplier activity: cycles with an active multiply (its parasitic
  activity is shielded otherwise — the paper's Sec. III-A modification).

The result is an activity factor near 1.0 for a typical mix, used to scale
the dynamic power term.
"""

from dataclasses import dataclass

from repro.isa.opcodes import InstructionKind, SPECS
from repro.sim.trace import Stage
from repro.utils.bitops import popcount

#: Weight of each activity component in the factor.
_DATAPATH_WEIGHT = 0.55
_CONTROL_WEIGHT = 0.25
_MULTIPLIER_WEIGHT = 0.20

#: Average operand-bus toggle count of a "typical" mix (calibration point
#: such that the suite average lands near 1.0).
_TYPICAL_TOGGLES_PER_CYCLE = 12.0
_TYPICAL_CONTROL_RATE = 0.25
_TYPICAL_MUL_RATE = 0.05


@dataclass(frozen=True)
class ActivityReport:
    """Per-run switching activity summary."""

    program_name: str
    num_cycles: int
    mean_operand_toggles: float
    control_rate: float          # redirects + stalls per cycle
    multiplier_rate: float       # fraction of cycles with an active mul
    activity_factor: float

    def summary(self):
        return (
            f"{self.program_name}: activity {self.activity_factor:.2f} "
            f"(operand toggles {self.mean_operand_toggles:.1f}/cycle, "
            f"control {100 * self.control_rate:.1f} %, "
            f"mul {100 * self.multiplier_rate:.1f} %)"
        )


def analyze_activity(trace):
    """Compute the :class:`ActivityReport` of a pipeline trace."""
    if not trace.records:
        raise ValueError("empty trace")
    toggles = 0
    control_events = 0
    mul_cycles = 0
    prev_a, prev_b = 0, 0
    for record in trace.records:
        a, b = record.ex_operands if record.ex_operands else (0, 0)
        if a is None or b is None:   # drained slot past the halt
            a, b = 0, 0
        toggles += popcount(a ^ prev_a) + popcount(b ^ prev_b)
        prev_a, prev_b = a, b
        if record.redirect or record.stall:
            control_events += 1
        view = record.view(Stage.EX)
        if view.mnemonic is not None:
            if SPECS[view.mnemonic].kind == InstructionKind.MUL:
                mul_cycles += 1

    num_cycles = len(trace.records)
    mean_toggles = toggles / num_cycles
    control_rate = control_events / num_cycles
    mul_rate = mul_cycles / num_cycles
    factor = (
        _DATAPATH_WEIGHT * (mean_toggles / _TYPICAL_TOGGLES_PER_CYCLE)
        + _CONTROL_WEIGHT * (control_rate / _TYPICAL_CONTROL_RATE)
        + _MULTIPLIER_WEIGHT * (mul_rate / _TYPICAL_MUL_RATE)
    )
    return ActivityReport(
        program_name=trace.program_name,
        num_cycles=num_cycles,
        mean_operand_toggles=mean_toggles,
        control_rate=control_rate,
        multiplier_rate=mul_rate,
        activity_factor=factor,
    )


def activity_scaled_power_uw(power_model, voltage, frequency_mhz,
                             activity_factor):
    """Total power with the dynamic component scaled by activity."""
    dynamic = power_model.dynamic_power_uw(voltage, frequency_mhz)
    leakage = power_model.leakage_power_uw(voltage)
    return dynamic * activity_factor + leakage
