"""Iso-throughput voltage-frequency scaling (paper Sec. IV-B).

The dynamically-clocked core is faster than the conventional one at equal
voltage; lowering the supply until its effective frequency just matches the
conventional core's STA frequency converts the speedup into power savings.
All delays scale together under the alpha-power law, so the *relative*
speedup of dynamic clock adjustment is voltage-independent — only the
absolute frequency moves.
"""

from dataclasses import dataclass

from repro.power.model import DCA_OVERHEAD_UW, PowerModel
from repro.timing.library import LibraryError, delay_scale_factor


@dataclass
class VoltageScalingResult:
    """Outcome of the iso-throughput voltage scaling search."""

    baseline_voltage: float
    scaled_voltage: float
    baseline_frequency_mhz: float      # conventional clocking @ baseline V
    dynamic_frequency_mhz: float       # dynamic clocking @ baseline V
    scaled_frequency_mhz: float        # dynamic clocking @ scaled V
    baseline_uw_per_mhz: float
    scaled_uw_per_mhz: float

    @property
    def voltage_reduction_v(self):
        return self.baseline_voltage - self.scaled_voltage

    @property
    def efficiency_gain_percent(self):
        return (self.baseline_uw_per_mhz / self.scaled_uw_per_mhz - 1.0) * 100.0

    def summary(self):
        return (
            f"V_dd {self.baseline_voltage:.2f} V -> "
            f"{self.scaled_voltage:.3f} V "
            f"(-{1000 * self.voltage_reduction_v:.0f} mV); "
            f"throughput kept at {self.baseline_frequency_mhz:.0f} MHz; "
            f"{self.baseline_uw_per_mhz:.1f} -> "
            f"{self.scaled_uw_per_mhz:.1f} uW/MHz "
            f"(+{self.efficiency_gain_percent:.0f} % energy efficiency)"
        )


def scale_voltage_iso_throughput(dynamic_frequency_mhz,
                                 baseline_frequency_mhz,
                                 baseline_voltage=0.70,
                                 power_model=None,
                                 resolution_v=0.001,
                                 min_voltage=0.50):
    """Find the lowest supply keeping dynamic clocking at baseline speed.

    Parameters
    ----------
    dynamic_frequency_mhz:
        Effective frequency with dynamic clock adjustment at
        ``baseline_voltage`` (e.g. the Fig. 8 suite average).
    baseline_frequency_mhz:
        Conventional (STA-limited) frequency that must be sustained.
    baseline_voltage:
        Starting supply voltage.
    resolution_v:
        Search granularity.
    min_voltage:
        Lower search bound (below this no characterised library exists).
    """
    if dynamic_frequency_mhz < baseline_frequency_mhz:
        raise ValueError(
            "dynamic clocking must be at least as fast as the baseline "
            "to allow voltage scaling"
        )
    model = power_model if power_model is not None else PowerModel()

    best_voltage = baseline_voltage
    voltage = baseline_voltage
    while voltage - resolution_v >= min_voltage:
        voltage = round(voltage - resolution_v, 6)
        try:
            stretch = (
                delay_scale_factor(voltage)
                / delay_scale_factor(baseline_voltage)
            )
        except LibraryError:
            break
        if dynamic_frequency_mhz / stretch >= baseline_frequency_mhz:
            best_voltage = voltage
        else:
            break

    stretch = (
        delay_scale_factor(best_voltage) / delay_scale_factor(baseline_voltage)
    )
    scaled_frequency = dynamic_frequency_mhz / stretch
    return VoltageScalingResult(
        baseline_voltage=baseline_voltage,
        scaled_voltage=best_voltage,
        baseline_frequency_mhz=baseline_frequency_mhz,
        dynamic_frequency_mhz=dynamic_frequency_mhz,
        scaled_frequency_mhz=scaled_frequency,
        baseline_uw_per_mhz=model.uw_per_mhz(
            baseline_voltage, baseline_frequency_mhz
        ),
        # at the scaled voltage the core still delivers >= baseline
        # throughput; power is measured at that sustained throughput and
        # includes the clock-generator / LUT-monitor overhead
        scaled_uw_per_mhz=(
            model.uw_per_mhz(best_voltage, baseline_frequency_mhz)
            + DCA_OVERHEAD_UW / baseline_frequency_mhz
        ),
    )
