"""Whole-program energy metrics."""

from repro.power.model import PowerModel


def program_energy_pj(evaluation_result, voltage, power_model=None):
    """Energy of one evaluated program run, in picojoules.

    ``evaluation_result`` is a
    :class:`~repro.flow.evaluate.EvaluationResult`; its total run time and
    effective frequency, combined with the power model at ``voltage``,
    give the energy of the run.
    """
    model = power_model if power_model is not None else PowerModel()
    power_uw = model.total_power_uw(
        voltage, evaluation_result.effective_frequency_mhz
    )
    # µW * ps = 1e-6 J/s * 1e-12 s = 1e-18 J = 1e-6 pJ
    return power_uw * evaluation_result.total_time_ps * 1e-6


def energy_per_instruction_pj(evaluation_result, voltage, power_model=None):
    """Average energy per retired instruction, in picojoules."""
    total = program_energy_pj(evaluation_result, voltage, power_model)
    if evaluation_result.num_retired == 0:
        raise ValueError("no retired instructions")
    return total / evaluation_result.num_retired
