"""Power model and voltage-frequency scaling (paper Sec. IV-B).

The speed gains of dynamic clock adjustment can be traded for power by
lowering the supply until the dynamically-clocked core just matches the
conventional core's throughput.  This package provides:

- :mod:`repro.power.model` — P(V, f) = dynamic CV²f + leakage, calibrated
  to the paper's 13.7 µW/MHz at 0.70 V / 494 MHz operating point;
- :mod:`repro.power.vfs` — the iso-throughput voltage scaling optimiser
  (paper: ~70 mV lower V_dd, 11.0 µW/MHz, 24 % energy-efficiency gain);
- :mod:`repro.power.energy` — energy metrics for whole program runs.
"""

from repro.power.energy import program_energy_pj
from repro.power.model import PowerModel
from repro.power.vfs import VoltageScalingResult, scale_voltage_iso_throughput

__all__ = [
    "PowerModel",
    "scale_voltage_iso_throughput",
    "VoltageScalingResult",
    "program_energy_pj",
]
