"""Core power model, calibrated to the paper's published operating points.

Model::

    P_total(V, f) = c_eff * V^2 * f + P_leak(V)
    P_leak(V)     = leak0 * exp((V - V_ref) / v_slope)

with the dynamic coefficient and leakage anchored so that the conventional
core at 0.70 V / 494 MHz consumes 13.7 µW/MHz (paper Sec. IV-B).  The
energy-efficiency metric the paper uses is µW/MHz at a given throughput.
"""

from dataclasses import dataclass

from repro.timing.library import REFERENCE_VOLTAGE

#: Dynamic power coefficient [µW / (MHz * V^2)].
C_EFF_UW_PER_MHZ_V2 = 25.72
#: Leakage at the reference voltage [µW].
LEAK0_UW = 544.0
#: Exponential slope of leakage vs. voltage [V].
LEAK_VSLOPE = 0.09
#: Constant overhead of the dynamic-clocking machinery: the tunable clock
#: generator and the per-stage delay-prediction LUT monitor.  The paper
#: notes the CG "can have a significant influence on the system power
#: consumption" (Sec. II-A); this term charges it to the scaled design.
DCA_OVERHEAD_UW = 180.0

#: The paper's reference operating point.
PAPER_VOLTAGE = 0.70
PAPER_FREQUENCY_MHZ = 494.0
PAPER_UW_PER_MHZ = 13.7


@dataclass(frozen=True)
class PowerModel:
    """Parametrised P(V, f) model (defaults reproduce the paper's core)."""

    c_eff: float = C_EFF_UW_PER_MHZ_V2
    leak0_uw: float = LEAK0_UW
    v_slope: float = LEAK_VSLOPE
    v_ref: float = REFERENCE_VOLTAGE

    def dynamic_power_uw(self, voltage, frequency_mhz):
        if voltage <= 0 or frequency_mhz <= 0:
            raise ValueError("voltage and frequency must be positive")
        return self.c_eff * voltage * voltage * frequency_mhz

    def leakage_power_uw(self, voltage):
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        import math
        return self.leak0_uw * math.exp((voltage - self.v_ref) / self.v_slope)

    def total_power_uw(self, voltage, frequency_mhz):
        return (
            self.dynamic_power_uw(voltage, frequency_mhz)
            + self.leakage_power_uw(voltage)
        )

    def uw_per_mhz(self, voltage, frequency_mhz):
        """The paper's energy-efficiency metric (µW/MHz)."""
        return self.total_power_uw(voltage, frequency_mhz) / frequency_mhz

    def efficiency_gain_percent(self, baseline_uw_per_mhz,
                                improved_uw_per_mhz):
        """Energy-efficiency improvement: work per energy, in percent.

        13.7 -> 11.0 µW/MHz is a 24 % improvement (13.7/11.0 = 1.245),
        matching the paper's reporting convention.
        """
        if improved_uw_per_mhz <= 0:
            raise ValueError("improved µW/MHz must be positive")
        return (baseline_uw_per_mhz / improved_uw_per_mhz - 1.0) * 100.0
