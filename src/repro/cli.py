"""Command-line interface.

Exposes the main flows as subcommands::

    python -m repro kernels                    # list bundled workloads
    python -m repro asm program.s              # assemble + listing
    python -m repro run crc32                  # functional + cycle run
    python -m repro sta [--variant ...]        # static timing analysis
    python -m repro characterize -o lut.json   # full characterisation
    python -m repro evaluate crc32 --policy instruction [--lut lut.json]
    python -m repro table2 [--lut lut.json]    # Table II view of a LUT
    python -m repro store gc --store DIR --max-size 500M [--dry-run]
    python -m repro train --grid grid.json -o model.npz   # learn a policy
    python -m repro profile grid.json --jobs 4            # where time goes
    python -m repro serve --store .repro-store --port 8787  # sweep service
    python -m repro submit --grid grid.json --wait --tenant alice

``train`` fits a learned clock policy (ML-DFS, see :mod:`repro.ml`) on
a scenario grid's per-cycle genie ground truth, calibrates it for
safety, writes the model artifact and self-evaluates it against the
static baseline.  The result deploys anywhere a policy name is
accepted, as ``learned:<model.npz>``::

    python -m repro evaluate crc32 --policy learned:model.npz

A missing or corrupt model file exits with code 2 (naming the path)
before any simulation or characterisation runs.

Scenario grids run whole experiments through the parallel sweep runner
(:mod:`repro.lab`) with a persistent artifact store, e.g.::

    python -m repro sweep --grid grid.json --jobs 4 \\
        --store .repro-store --resume --json sweep.json --csv sweep.csv

where ``grid.json`` declares the axes to cross::

    {"name": "margins", "policies": ["instruction", "genie"],
     "margins": [0.0, 5.0], "voltages": [0.70, 0.80],
     "workloads": ["crc32", "matmult"]}

A warm store skips pipeline simulation and characterisation entirely;
``--resume`` continues an interrupted run from its manifest;
``--store-max-size 500M`` LRU-evicts the store down to a budget after
the merge, so long campaigns self-limit.

Observability (:mod:`repro.obs`): ``sweep --grid ... --trace out.json``
records spans from every layer — session, evaluate, compile, ISS, store,
including worker processes — into a Chrome trace-event file (open it at
``ui.perfetto.dev``); ``--progress`` renders a per-unit progress line
with an ETA on stderr (auto-disabled when stderr is not a TTY).
``profile`` runs a grid with tracing on and prints the per-phase
time/cache breakdown instead of the result table::

    python -m repro profile grid.json --jobs 4 --store .repro-store

    Span                  Count  Wall [ms]  CPU [ms]  Mean [ms]
    session.sweep             1     191.43     82.11    191.430
    sweep.unit_batch          6     180.02     71.40     30.003
    dta.compile_batch         3     161.77     60.91     53.923
    iss.collect              12     120.45     52.00     10.038
    ...
    counters:
      sim.simulations = 12
      store.trace.hit = 24

The sweep service (:mod:`repro.serve`) turns the same grid files into a
multi-tenant HTTP service over one shared store: ``serve`` starts it,
``submit`` sends a grid and (with ``--wait``) streams progress until the
result frame comes back::

    python -m repro serve --store .repro-store --workers 2 \\
        --queue-limit 16 --tenant-budget 100M
    python -m repro submit --grid grid.json --tenant alice --wait \\
        --json result.json

Two clients submitting the same grid (any tenants) share one
computation — the server dedups by grid fingerprint — and a repeat
submission of a finished grid is served from the store's frame cache
with zero re-simulation (``"cached": true`` in the job snapshot).

Programs may be given as a bundled kernel name or a path to an assembly
file.

Design-point commands (``sta``, ``characterize``, ``evaluate``,
``sweep``, ``stream``, ``table2``; also ``run``) accept
``--pipeline-spec`` to select a registered pipeline microarchitecture
preset (:data:`repro.sim.spec.PIPELINE_VARIANTS`)::

    python -m repro evaluate crc32 --pipeline-spec shallow5

Non-default specs key their own compiled traces, LUTs and store
artifacts; grid files instead declare a ``pipeline_specs`` axis.

Every pipeline command is a thin call into :class:`repro.api.Session`
(the public facade); the CLI only parses arguments and formats output.
"""

import argparse
import json
import pathlib
import sys

from repro.api import Session, result_from_row
from repro.asm import disassemble_program
from repro.dta.lut import DelayLUT
from repro.ml.model import (
    ModelError,
    is_learned_spec,
    validate_policy_specs,
)
from repro.sim.iss import FunctionalSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.sim.spec import PIPELINE_VARIANTS, get_pipeline_spec
from repro.timing.design import build_design
from repro.timing.profiles import DesignVariant
from repro.timing.sta import run_sta
from repro.timing.wall import wall_profile
from repro.utils.units import ps_to_mhz
from repro.workloads import WorkloadError, all_kernels, resolve_program


def _load_program(spec):
    """Resolve a program argument: bundled kernel name or .s/.asm path.

    Unknown kernels and missing files raise
    :class:`~repro.workloads.WorkloadError`, which ``main`` turns into a
    friendly message (listing the bundled kernels) and a nonzero exit.
    """
    return resolve_program(spec)


def _build(args):
    """Design at the (variant, voltage, pipeline-spec) point named on
    the command line."""
    return build_design(
        DesignVariant(args.variant), voltage=args.voltage,
        pipeline_spec=getattr(args, "pipeline_spec", None),
    )


def _session(args, store=None, announce=True, **kwargs):
    """A Session at the operating point named on the command line.

    Prints the on-the-fly characterisation notice when neither a LUT
    file nor a store will provide the delay LUT.
    """
    lut = None
    if getattr(args, "lut", None):
        lut = DelayLUT.from_json(pathlib.Path(args.lut).read_text())
    elif store is None and announce:
        print("no --lut given: characterising on the fly ...",
              file=sys.stderr)
    return Session(
        variant=args.variant, voltage=args.voltage, lut=lut, store=store,
        pipeline_spec=getattr(args, "pipeline_spec", None),
        **kwargs,
    )


def _pipeline_spec_arg(value):
    """Argparse type for ``--pipeline-spec``: a registered preset name
    (see :data:`repro.sim.spec.PIPELINE_VARIANTS`)."""
    try:
        get_pipeline_spec(value)
    except (TypeError, ValueError):
        raise argparse.ArgumentTypeError(
            f"unknown pipeline spec {value!r} "
            f"(choose from {', '.join(sorted(PIPELINE_VARIANTS))})"
        ) from None
    return value


def _add_pipeline_spec_argument(parser):
    parser.add_argument(
        "--pipeline-spec", default=None, type=_pipeline_spec_arg,
        metavar="SPEC",
        help="pipeline microarchitecture preset "
             f"(choices: {', '.join(sorted(PIPELINE_VARIANTS))}; "
             "default: baseline6)",
    )


def _add_design_arguments(parser):
    parser.add_argument(
        "--variant", default="critical_range",
        choices=[variant.value for variant in DesignVariant],
        help="implementation variant (default: critical_range)",
    )
    parser.add_argument(
        "--voltage", type=float, default=0.70,
        help="supply voltage in volts (default: 0.70)",
    )
    _add_pipeline_spec_argument(parser)


def cmd_kernels(args):
    """List the bundled workload kernels (name, category, description)."""
    print(f"{'name':14s} {'category':8s} description")
    for kernel in all_kernels():
        print(f"{kernel.name:14s} {kernel.category:8s} {kernel.description}")
    return 0


def cmd_asm(args):
    """Assemble a program and print its disassembly listing."""
    program = _load_program(args.program)
    print(f"# {program.name}: {program.size_words} words, "
          f"entry {program.entry:#x}")
    print(disassemble_program(program))
    return 0


def cmd_run(args):
    """Run a program on the ISS and the cycle-accurate pipeline and
    cross-check their architectural state (exit 1 on divergence)."""
    program = _load_program(args.program)
    iss = FunctionalSimulator(program)
    iss.run()
    pipe = PipelineSimulator(
        program, spec=get_pipeline_spec(getattr(args, "pipeline_spec",
                                                None))
    )
    pipe.run()
    if iss.state.regs != pipe.state.regs:
        print("ERROR: ISS and pipeline disagree", file=sys.stderr)
        return 1
    print(f"{program.name}: {iss.state.instret} instructions, "
          f"{pipe.trace.num_cycles} cycles (CPI {pipe.trace.cpi:.3f})")
    print(f"r11 = {iss.state.regs[11]} ({iss.state.regs[11]:#010x})")
    if args.regs:
        for index in range(0, 32, 4):
            print("  " + "  ".join(
                f"r{r:<2d}={iss.state.regs[r]:#010x}"
                for r in range(index, index + 4)
            ))
    return 0


def cmd_sta(args):
    """Static timing analysis of the design's synthetic netlist: the
    critical path, the per-stage wall profile and the clock bound."""
    design = _build(args)
    report = run_sta(design.netlist)
    print(report.summary())
    print(wall_profile(design.netlist).summary())
    print(f"clock bound: {report.critical_delay_ps:.0f} ps = "
          f"{ps_to_mhz(report.critical_delay_ps):.1f} MHz "
          f"@ {args.voltage:.2f} V")
    return 0


def cmd_characterize(args):
    """Characterise the design point and print or write the delay LUT
    (gate-sim substitute + DTA + extraction over the standard suite)."""
    session = _session(args, announce=False)
    print(f"characterising {session.design.name} ...", file=sys.stderr)
    result = session.characterize()
    text = result.lut.to_json()
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output} ({result.total_cycles} cycles, "
              f"{len(result.lut.classes())} classes)")
    else:
        print(text)
    return 0


def cmd_evaluate(args):
    """Evaluate one program under one clock policy with ground-truth
    safety replay; exit 1 when any timing violation is recorded."""
    program = _load_program(args.program)   # fail fast on a bad spec
    validate_policy_specs([args.policy])    # ... and on a bad model file
    session = _session(args)
    frame = session.evaluate(
        [program],
        policies=[args.policy], generators=[args.generator],
        margins=[args.margin], check_safety=True,
    )
    result = result_from_row(frame.row(0))
    print(result.summary())
    if not result.is_safe:
        worst = max(result.violations, key=lambda v: v.overshoot_ps)
        print(f"WORST VIOLATION: cycle {worst.cycle} stage "
              f"{worst.stage.name} overshoot {worst.overshoot_ps:.1f} ps")
        return 1
    return 0


def _parse_store_budget(args):
    """``--store-max-size`` → bytes (or ``None``); raises ValueError
    on a malformed size or when no store is given to evict."""
    if not getattr(args, "store_max_size", None):
        return None
    if not args.store:
        raise ValueError("--store-max-size requires --store")
    return parse_size(args.store_max_size)


def cmd_sweep(args):
    """Batch-evaluate programs under many configurations: flag-driven
    axes by default, or the parallel grid runner with ``--grid``."""
    if args.grid:
        return _run_grid_sweep(args)
    if (args.resume or args.jobs != 1 or args.json or args.trace
            or args.progress):
        print("--resume/--jobs/--json/--trace/--progress require a "
              "scenario grid (--grid)", file=sys.stderr)
        return 2

    if args.programs:
        programs = [_load_program(spec) for spec in args.programs]
    else:
        programs = None                    # the Fig. 8 benchmark suite
    validate_policy_specs(args.policy or [])   # before any simulation
    try:
        budget = _parse_store_budget(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = _session(
        args, store=args.store or None, store_budget_bytes=budget
    )
    return _run_flag_sweep(args, session, programs)


def _run_flag_sweep(args, session, programs):
    """Legacy flag-driven sweep (no scenario grid)."""
    from repro.flow.figures import sweep_frame_series, write_csv
    from repro.utils.tables import format_table

    frame = session.evaluate(
        programs,
        policies=args.policy or ["instruction", "ex-only", "two-class",
                                 "genie"],
        generators=args.generator or ["ideal"],
        margins=args.margin if args.margin else [0.0],
        check_safety=args.check_safety,
    )
    summary = frame.group_by("config", {
        "mhz": ("effective_frequency_mhz", "mean"),
        "speedup": ("speedup_percent", "mean"),
        "violations": ("num_violations", "sum"),
    })
    table_rows = [
        (row["config"], f"{row['mhz']:.0f}", f"{row['speedup']:+.1f}%",
         f"{int(row['violations'])}")
        for row in summary.iter_rows()
    ]
    num_programs = len(frame.distinct("program"))
    print(format_table(
        ["Configuration", "Avg. [MHz]", "Avg. speedup", "Violations"],
        table_rows,
        title=f"Sweep: {num_programs} programs x {len(summary)} configs "
              f"@ {args.voltage:.2f} V",
    ))
    if args.csv:
        header, series = sweep_frame_series(frame)
        write_csv(args.csv, header, series)
        print(f"wrote {args.csv} ({len(series)} rows)")
    unsafe = int(frame["num_violations"].sum())
    if session.store is not None and session.store_budget_bytes is not None:
        session.gc()
    return 1 if (args.check_safety and unsafe) else 0


def _write_trace(path, session, label):
    """Export the session's telemetry as a Chrome trace-event file."""
    from repro.obs import metrics as obs_metrics
    from repro.obs.export import write_chrome_trace

    spans = session.telemetry.snapshot()
    write_chrome_trace(path, spans, counters=obs_metrics.gather(),
                       label=label)
    print(f"wrote {path} ({len(spans)} spans)")


def cmd_profile(args):
    """Run a scenario grid with tracing on; print where the time went.

    The per-span table aggregates the merged timeline (parent process
    plus any sweep workers); counters come from the unified
    :mod:`repro.obs.metrics` registry, so cache hits and simulation
    counts reflect the whole run even under ``--jobs``.
    """
    from repro.lab.scenario import ScenarioError, ScenarioGrid
    from repro.obs import metrics as obs_metrics
    from repro.obs.export import summary_rows
    from repro.utils.tables import format_table

    try:
        grid = ScenarioGrid.from_file(args.grid)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    validate_policy_specs(grid.policies)
    session = Session(
        store=args.store or None, jobs=args.jobs, telemetry=True,
    )
    result = session.sweep(grid, resume=args.resume)
    spans = session.telemetry.snapshot()
    table_rows = [
        (row["span"], f"{row['count']}", f"{row['wall_ms']:.2f}",
         f"{row['cpu_ms']:.2f}", f"{row['mean_ms']:.3f}")
        for row in summary_rows(spans)
    ]
    print(format_table(
        ["Span", "Count", "Wall [ms]", "CPU [ms]", "Mean [ms]"],
        table_rows,
        title=(f"Profile '{grid.name}': {result.units_total} units in "
               f"{result.seconds:.2f} s, jobs={result.jobs}"),
    ))
    counters = obs_metrics.gather()
    if counters:
        print("counters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")
    if result.store_stats is not None:
        print(f"store: {result.store_stats.summary()}")
    if args.trace:
        _write_trace(args.trace, session, grid.name)
    return 0


def _run_grid_sweep(args):
    """Scenario-grid mode: the parallel runner + artifact store."""
    from repro.lab.scenario import ScenarioError, ScenarioGrid
    from repro.utils.tables import format_table

    if (args.programs or args.policy or args.generator or args.margin
            or args.check_safety or args.lut
            or args.variant != "critical_range" or args.voltage != 0.70
            or args.pipeline_spec is not None):
        print("--grid mode takes every axis from the grid file; drop the "
              "positional programs and the --policy/--generator/--margin/"
              "--check-safety/--lut/--variant/--voltage/--pipeline-spec "
              "flags", file=sys.stderr)
        return 2
    try:
        grid = ScenarioGrid.from_file(args.grid)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    validate_policy_specs(grid.policies)   # before any simulation
    try:
        budget = _parse_store_budget(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    session = Session(
        store=args.store or None, jobs=args.jobs,
        store_budget_bytes=budget,
        telemetry=bool(args.trace),
    )
    unit_progress = None
    on_unit = None
    per_unit_lines = lambda line: print(line, file=sys.stderr)  # noqa: E731
    if args.progress:
        from repro.obs.progress import UnitProgress

        unit_progress = UnitProgress(0, stream=sys.stderr,
                                     label=f"sweep {grid.name}")
        on_unit = unit_progress.update
        if unit_progress.enabled:
            per_unit_lines = None   # one line, not one per unit
    try:
        result = session.sweep(
            grid,
            resume=args.resume,
            progress=per_unit_lines,
            on_unit=on_unit,
        )
    finally:
        if unit_progress is not None:
            unit_progress.finish()
    if args.trace:
        _write_trace(args.trace, session, grid.name)

    summary = result.frame.group_by(["design_point", "config"], {
        "mhz": ("effective_frequency_mhz", "mean"),
        "speedup": ("speedup_percent", "mean"),
        "violations": ("num_violations", "sum"),
    })
    table_rows = [
        (row["design_point"], row["config"], f"{row['mhz']:.0f}",
         f"{row['speedup']:+.1f}%", f"{int(row['violations'])}")
        for row in summary.iter_rows()
    ]
    print(format_table(
        ["Design point", "Configuration", "Avg. [MHz]", "Avg. speedup",
         "Violations"],
        table_rows,
        title=(
            f"Grid '{grid.name}': {result.units_total} units "
            f"({result.units_resumed} resumed) x "
            f"{len(grid.config_specs())} configs "
            f"in {result.seconds:.2f} s, jobs={result.jobs}"
        ),
    ))
    if result.store_stats is not None:
        print(f"store: {result.store_stats.summary()}; "
              f"simulations run: {result.simulations}")
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json}")
    if args.csv:
        result.write_csv(args.csv)
        print(f"wrote {args.csv} ({len(result.frame)} rows)")
    return 1 if (grid.check_safety and result.num_violations) else 0


def cmd_table2(args):
    """Render the characterised delay LUT in the paper's Table II
    layout (per-class, per-stage-group delays)."""
    session = _session(args)
    print(session.lut.render())
    return 0


def cmd_train(args):
    """Train a learned clock policy on a scenario grid (repro.ml).

    Writes the model artifact to ``--out``, content-addresses it into
    the store when one is given, then (unless ``--no-eval``) deploys it
    through :class:`Session` on the full benchmark suite: the run fails
    (exit 1) if the learned policy violates timing under genie safety
    replay or does not beat the static baseline's mean effective
    frequency.  ``--report`` writes the train+eval metrics as JSON
    (the CI ``ml-smoke`` artifact, ``BENCH_train.json``).
    """
    from repro.lab.scenario import ScenarioError, ScenarioGrid
    from repro.ml.train import TrainerConfig, train_policy
    from repro.utils.tables import format_table

    try:
        grid = ScenarioGrid.from_file(args.grid)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        config = TrainerConfig(
            model=args.model, seed=args.seed, max_depth=args.max_depth,
            min_samples_leaf=args.min_samples_leaf, window=args.window,
            calibration_margin_percent=args.margin,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = args.store or None
    outcome = train_policy(
        grid, config, store=store, jobs=args.jobs,
        progress=lambda line: print(line, file=sys.stderr),
    )
    model = outcome.model
    out = args.out
    model.save(out)
    print(f"wrote {out} ({model.kind}, {model.num_leaves} leaves, "
          f"{outcome.report['train_rows']} training rows, seed "
          f"{config.seed})")
    from repro.obs.host import host_metadata

    report = {"train": outcome.report, "host": host_metadata()}
    if store:
        from repro.lab.store import ArtifactStore

        name = f"train:{grid.fingerprint()}:{config.seed}:{config.model}"
        ArtifactStore(store).save_model(name, model)
        report["store_model"] = name
        print(f"stored model artifact {name!r} in {store}")

    exit_code = 0
    if not args.no_eval:
        point = grid.design_points()[0]
        session = Session(
            variant=point.variant, voltage=point.voltage, store=store,
            jobs=args.jobs,
        )
        spec = f"learned:{out}"
        frame = session.evaluate(
            None, policies=[spec, "static"], check_safety=True
        )
        summary = frame.group_by("policy", {
            "mhz": ("effective_frequency_mhz", "mean"),
            "speedup": ("speedup_percent", "mean"),
            "speedup_p95": ("speedup_percent", "p95"),
            "violations": ("num_violations", "sum"),
        })
        rows = {row["policy"]: row for row in summary.iter_rows()}
        learned, static = rows[spec], rows["static"]
        print(format_table(
            ["Policy", "Avg. [MHz]", "Avg. speedup", "p95 speedup",
             "Violations"],
            [
                (policy, f"{row['mhz']:.0f}", f"{row['speedup']:+.1f}%",
                 f"{row['speedup_p95']:+.1f}%", f"{int(row['violations'])}")
                for policy, row in (("learned", learned),
                                    ("static", static))
            ],
            title=(f"Learned vs static @ {point.label}: "
                   f"{len(frame.distinct('program'))} programs"),
        ))
        safe = learned["violations"] == 0
        faster = learned["mhz"] > static["mhz"]
        report["eval"] = {
            "design_point": point.label,
            "programs": len(frame.distinct("program")),
            "learned": learned,
            "static": static,
            "safe": safe,
            "faster_than_static": faster,
        }
        if not safe:
            print(f"FAIL: learned policy caused "
                  f"{int(learned['violations'])} timing violations",
                  file=sys.stderr)
            exit_code = 1
        if not faster:
            print("FAIL: learned policy does not beat the static "
                  "baseline's mean effective frequency", file=sys.stderr)
            exit_code = 1
    if args.report:
        pathlib.Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.report}")
    return exit_code


#: Registry policy names; ``learned:<model.npz>`` deploys a trained one.
_POLICY_CHOICES = ("instruction", "ex-only", "two-class", "genie",
                   "static")


def _policy_arg(value):
    """Argparse type for ``--policy``: a registry name or a
    ``learned:<model.npz>`` spec (the file itself is validated later,
    via :func:`repro.ml.model.validate_policy_specs`)."""
    if value in _POLICY_CHOICES or is_learned_spec(value):
        return value
    raise argparse.ArgumentTypeError(
        f"invalid policy {value!r} "
        f"(choose from {', '.join(_POLICY_CHOICES)} "
        "or learned:<model.npz>)"
    )


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_size(text):
    """Parse a size budget like ``500M``, ``1.5G``, ``4096`` (bytes)."""
    text = text.strip().lower().removesuffix("b")
    factor = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"invalid size {text!r}") from None
    if value < 0:
        raise ValueError("size budget cannot be negative")
    return int(value * factor)


def cmd_store_gc(args):
    """LRU store eviction: keep the most recently used artifacts within
    the size budget (artifact loads refresh their mtime)."""
    try:
        budget = parse_size(args.max_size)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = Session(store=args.store, store_budget_bytes=budget)
    store = session.store
    if not store.root.is_dir():
        print(f"error: store directory {store.root} does not exist",
              file=sys.stderr)
        return 2
    result = session.gc(dry_run=args.dry_run)
    prefix = "would evict" if args.dry_run else "evicted"
    print(f"{store.root}: {result.scanned_files} artifacts scanned; "
          f"{prefix} {result.removed_files} "
          f"({result.removed_bytes} B), kept {result.kept_files} "
          f"({result.kept_bytes} B) within {budget} B")
    return 0


def cmd_serve(args):
    """Start the multi-tenant sweep service (:mod:`repro.serve`).

    Serves sweep/evaluate/train jobs over HTTP on one shared artifact
    store; identical grids are deduplicated by fingerprint and finished
    results are cached as frames.  Runs until SIGINT/SIGTERM or a
    ``POST /v1/shutdown``.
    """
    from repro.serve import ServeConfig, SweepServer

    try:
        tenant_budget = (parse_size(args.tenant_budget)
                         if args.tenant_budget else None)
        store_budget = (parse_size(args.store_max_size)
                        if args.store_max_size else None)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = ServeConfig(
        store_root=args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        sweep_jobs=args.jobs,
        queue_limit=args.queue_limit,
        tenant_budget_bytes=tenant_budget,
        store_budget_bytes=store_budget,
        telemetry=args.telemetry,
    )
    return SweepServer(config).run()


def cmd_submit(args):
    """Submit a scenario grid to a running sweep service.

    Prints the job snapshot; with ``--wait`` streams progress events on
    stderr until the job finishes, then writes/prints the result frame.
    A cached or deduplicated submission is visible in the snapshot
    (``"cached": true`` / ``"deduped": true``).
    """
    from repro.lab.scenario import ScenarioError, ScenarioGrid
    from repro.serve import ServeClient
    from repro.serve.client import ServeError

    try:
        grid = ScenarioGrid.from_file(args.grid)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    client = ServeClient(args.url, timeout=args.timeout)
    try:
        job = client.submit(grid, kind=args.kind, tenant=args.tenant)
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1 if error.status == 429 else 2
    except OSError as error:
        print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
        return 2
    flags = []
    if job.get("cached"):
        flags.append("cached")
    if job.get("deduped"):
        flags.append("deduped")
    note = f" ({', '.join(flags)})" if flags else ""
    print(f"job {job['id']}: {job['state']}{note} "
          f"[grid {job['grid']!r}, tenant {job['tenant']!r}]")
    if not args.wait:
        return 0
    try:
        if job["state"] not in ("done", "failed"):
            for event in client.events(job["id"]):
                if event.get("event") == "progress":
                    print(f"  {event['done']}/{event['total']} units",
                          file=sys.stderr)
        snapshot = client.wait(job["id"], timeout=args.timeout)
        if snapshot["state"] == "failed":
            print(f"error: job failed: {snapshot['error']}",
                  file=sys.stderr)
            return 1
        body = client.result_bytes(job["id"])
    except (ServeError, TimeoutError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        pathlib.Path(args.json).write_bytes(body)
        print(f"wrote {args.json} ({len(body)} bytes)")
    else:
        sys.stdout.write(body.decode())
    return 0


def _print_window(update, file=sys.stderr):
    """One rolling-result line per window (local streaming mode)."""
    rows = update.frame.to_rows()
    best = max(rows, key=lambda row: row["effective_frequency_mhz"])
    violations = sum(int(row["num_violations"]) for row in rows)
    print(f"  {update.program} window {update.index} "
          f"[{update.start_cycle}..{update.start_cycle + update.num_cycles}) "
          f"stream={update.stream_cycles} cyc: "
          f"best {best['config']} {best['effective_frequency_mhz']:.0f} MHz, "
          f"{violations} violations", file=file)


def cmd_stream(args):
    """Streaming (windowed) evaluation — local or against the service.

    Local mode drives a :class:`repro.stream.StreamingSession` over the
    named programs (or the seeded random program stream), printing one
    rolling-result line per window; remote mode (``--url``) submits a
    ``stream`` job and follows its per-window events off ``/events``.
    An unbounded local stream runs until Ctrl-C.
    """
    if args.url:
        return _remote_stream(args)
    from repro.stream import StreamingSession, kernel_source, random_source

    validate_policy_specs(args.policy or [])
    if args.programs:
        if args.source == "randomgen":
            print("error: give programs or --source randomgen, not both",
                  file=sys.stderr)
            return 2
        source = kernel_source(args.programs)
        unbounded = False
    elif args.source == "randomgen":
        source = random_source(
            seed=args.seed, length=args.length, repeats=args.repeats,
            unique=args.unique, count=args.count,
        )
        unbounded = args.count is None
    else:
        print("error: name programs to stream or pass --source randomgen",
              file=sys.stderr)
        return 2
    session = _session(args, store=args.store or None)
    streaming = StreamingSession(
        session, window_cycles=args.window_cycles,
        max_windows=args.max_windows,
    )
    if unbounded:
        print("unbounded stream (no --count): Ctrl-C to stop",
              file=sys.stderr)
    on_window = None if args.quiet else _print_window
    try:
        frame = streaming.evaluate(
            source,
            policies=args.policy or ["instruction"],
            generators=args.generator or ["ideal"],
            margins=args.margin if args.margin else [0.0],
            check_safety=True,
            on_window=on_window,
        )
    except KeyboardInterrupt:
        print("stream interrupted", file=sys.stderr)
        return 130
    if args.json:
        pathlib.Path(args.json).write_text(frame.to_json())
        print(f"wrote {args.json} ({len(frame)} rows)")
        return 0
    from repro.utils.tables import format_table

    summary = frame.group_by("config", {
        "mhz": ("effective_frequency_mhz", "mean"),
        "violations": ("num_violations", "sum"),
    })
    table_rows = [
        (row["config"], f"{row['mhz']:.0f}", f"{int(row['violations'])}")
        for row in summary.iter_rows()
    ]
    num_programs = len(frame.distinct("program"))
    print(format_table(
        ["Configuration", "Avg. [MHz]", "Violations"],
        table_rows,
        title=f"Stream: {num_programs} programs x {len(summary)} configs "
              f"@ {args.voltage:.2f} V, window {args.window_cycles} cyc",
    ))
    return 0


def _remote_stream(args):
    """``repro stream --url``: submit a ``stream`` job and follow its
    rolling window events over the service's ndjson channel."""
    from repro.lab.scenario import ScenarioError, ScenarioGrid
    from repro.serve import ServeClient
    from repro.serve.client import ServeError

    if not args.grid:
        print("error: --url needs --grid (the config axes of the stream "
              "job)", file=sys.stderr)
        return 2
    try:
        grid = ScenarioGrid.from_file(args.grid)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    options = {
        "window_cycles": args.window_cycles,
        "max_windows": args.max_windows,
        "source": args.source,
        "seed": args.seed,
        "count": args.count,
        "length": args.length,
        "repeats": args.repeats,
        "unique": args.unique,
    }
    client = ServeClient(args.url, timeout=args.timeout)
    try:
        job = client.submit(grid, kind="stream", tenant=args.tenant,
                            stream=options)
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1 if error.status == 429 else 2
    except OSError as error:
        print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
        return 2
    note = " (cached)" if job.get("cached") else ""
    print(f"job {job['id']}: {job['state']}{note} "
          f"[grid {job['grid']!r}, tenant {job['tenant']!r}]")
    try:
        if job["state"] not in ("done", "failed"):
            for event in client.events(job["id"]):
                if event.get("event") == "window" and not args.quiet:
                    best = max(
                        event["rows"],
                        key=lambda row: row["effective_frequency_mhz"],
                    )
                    violations = sum(int(row["num_violations"])
                                     for row in event["rows"])
                    print(f"  {event['design_point']} {event['program']} "
                          f"window {event['window']}: best "
                          f"{best['config']} "
                          f"{best['effective_frequency_mhz']:.0f} MHz, "
                          f"{violations} violations", file=sys.stderr)
        snapshot = client.wait(job["id"], timeout=args.timeout)
        if snapshot["state"] == "failed":
            print(f"error: job failed: {snapshot['error']}",
                  file=sys.stderr)
            return 1
        body = client.result_bytes(job["id"])
    except (ServeError, TimeoutError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        pathlib.Path(args.json).write_bytes(body)
        print(f"wrote {args.json} ({len(body)} bytes)")
    else:
        sys.stdout.write(body.decode())
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Instruction-based dynamic clock adjustment "
                    "(DATE 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("kernels", help="list bundled workloads")
    sub.set_defaults(func=cmd_kernels)

    sub = subparsers.add_parser("asm", help="assemble and list a program")
    sub.add_argument("program", help="kernel name or assembly file")
    sub.set_defaults(func=cmd_asm)

    sub = subparsers.add_parser("run", help="run a program functionally "
                                            "and cycle-accurately")
    sub.add_argument("program")
    sub.add_argument("--regs", action="store_true",
                     help="dump the full register file")
    _add_pipeline_spec_argument(sub)
    sub.set_defaults(func=cmd_run)

    sub = subparsers.add_parser("sta", help="static timing analysis")
    _add_design_arguments(sub)
    sub.set_defaults(func=cmd_sta)

    sub = subparsers.add_parser("characterize",
                                help="extract the delay LUT")
    _add_design_arguments(sub)
    sub.add_argument("-o", "--output", help="write the LUT as JSON")
    sub.set_defaults(func=cmd_characterize)

    sub = subparsers.add_parser("evaluate",
                                help="evaluate a program under a policy")
    sub.add_argument("program")
    _add_design_arguments(sub)
    sub.add_argument("--policy", default="instruction",
                     type=_policy_arg, metavar="POLICY",
                     help="policy name or learned:<model.npz> "
                          f"(choices: {', '.join(_POLICY_CHOICES)})")
    sub.add_argument("--generator", default="ideal",
                     choices=["ideal", "ring", "pll"])
    sub.add_argument("--margin", type=float, default=0.0,
                     help="safety margin in percent")
    sub.add_argument("--lut", help="reuse a LUT JSON file")
    sub.set_defaults(func=cmd_evaluate)

    sub = subparsers.add_parser(
        "sweep",
        help="batch-evaluate programs under many configurations",
    )
    sub.add_argument("programs", nargs="*",
                     help="kernel names or assembly files "
                          "(default: the Fig. 8 benchmark suite)")
    _add_design_arguments(sub)
    sub.add_argument("--policy", action="append",
                     type=_policy_arg, metavar="POLICY",
                     help="policy to sweep: a registry name or "
                          "learned:<model.npz> (repeatable; default: "
                          "all non-static policies)")
    sub.add_argument("--generator", action="append",
                     choices=["ideal", "ring", "pll"],
                     help="generator to sweep (repeatable; default: ideal)")
    sub.add_argument("--margin", action="append", type=float,
                     help="safety margin in percent (repeatable; default: 0)")
    sub.add_argument("--check-safety", action="store_true",
                     help="replay ground-truth delays and count violations")
    sub.add_argument("--csv", help="write the per-benchmark series as CSV")
    sub.add_argument("--lut", help="reuse a LUT JSON file")
    sub.add_argument("--grid",
                     help="scenario grid file (.json/.toml); runs the "
                          "parallel sweep runner instead of the one-shot "
                          "policy sweep")
    sub.add_argument("--jobs", type=int, default=1,
                     help="worker processes for --grid mode (default: 1)")
    sub.add_argument("--store",
                     help="artifact-store directory: compiled traces and "
                          "LUTs are cached here across runs")
    sub.add_argument("--resume", action="store_true",
                     help="reuse completed units from the run manifest of "
                          "an interrupted --grid run")
    sub.add_argument("--json",
                     help="write the merged grid results as JSON")
    sub.add_argument("--store-max-size",
                     help="store size budget (e.g. 500M): LRU-evict the "
                          "artifact store down to it after the run")
    sub.add_argument("--trace",
                     help="write a Chrome trace-event JSON of the run "
                          "(--grid mode; open in ui.perfetto.dev)")
    sub.add_argument("--progress", action="store_true",
                     help="per-unit progress line with ETA on stderr "
                          "(--grid mode; auto-disabled when not a TTY)")
    sub.set_defaults(func=cmd_sweep)

    sub = subparsers.add_parser(
        "profile",
        help="run a scenario grid with tracing and print the per-phase "
             "time/cache breakdown",
    )
    sub.add_argument("grid", help="scenario grid file (.json/.toml)")
    sub.add_argument("--jobs", type=int, default=1,
                     help="worker processes (default: 1)")
    sub.add_argument("--store",
                     help="artifact-store directory (cache effects show "
                          "up in the counters)")
    sub.add_argument("--resume", action="store_true",
                     help="reuse completed units from the run manifest")
    sub.add_argument("--trace",
                     help="also write the Chrome trace-event JSON")
    sub.set_defaults(func=cmd_profile)

    sub = subparsers.add_parser(
        "train",
        help="train a learned clock policy on a scenario grid (ML-DFS)",
    )
    sub.add_argument("--grid", required=True,
                     help="scenario grid file (.json/.toml): its design "
                          "points x workloads are the training corpus")
    sub.add_argument("-o", "--out", default="model.npz",
                     help="model artifact path (default: model.npz); "
                          "deploy it as --policy learned:<path>")
    sub.add_argument("--store",
                     help="artifact-store directory (traces/LUTs cached, "
                          "model content-addressed into it)")
    sub.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the training sweep")
    sub.add_argument("--seed", type=int, default=0,
                     help="training seed, recorded in the artifact "
                          "(default: 0)")
    sub.add_argument("--model", default="tree",
                     choices=["tree", "logistic"],
                     help="predictor kind (default: tree)")
    sub.add_argument("--max-depth", type=int, default=12)
    sub.add_argument("--min-samples-leaf", type=int, default=32)
    sub.add_argument("--window", type=int, default=8,
                     help="recent-excitation window in cycles")
    sub.add_argument("--margin", type=float, default=0.0,
                     help="calibration safety margin in percent")
    sub.add_argument("--report",
                     help="write train+eval metrics as JSON "
                          "(e.g. BENCH_train.json)")
    sub.add_argument("--no-eval", action="store_true",
                     help="skip the learned-vs-static self-evaluation")
    sub.set_defaults(func=cmd_train)

    sub = subparsers.add_parser(
        "serve",
        help="start the multi-tenant sweep service over a shared store",
    )
    sub.add_argument("--store", required=True,
                     help="shared artifact-store directory (the service's "
                          "cache and dedup fabric)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    sub.add_argument("--port", type=int, default=8787,
                     help="bind port; 0 picks a free one (default: 8787)")
    sub.add_argument("--workers", type=int, default=2,
                     help="concurrent job worker processes (default: 2)")
    sub.add_argument("--jobs", type=int, default=1,
                     help="shard workers inside each job's sweep "
                          "(default: 1)")
    sub.add_argument("--queue-limit", type=int, default=16,
                     help="active-job bound; submissions past it get "
                          "HTTP 429 (default: 16)")
    sub.add_argument("--tenant-budget",
                     help="per-tenant cached-frame budget (e.g. 100M): "
                          "LRU-evict a tenant's results past it")
    sub.add_argument("--store-max-size",
                     help="whole-store size budget (e.g. 2G), LRU-gc'd "
                          "after every completed job")
    sub.add_argument("--telemetry", action="store_true",
                     help="record serve.job spans (plus worker spans) on "
                          "the server tracer")
    sub.set_defaults(func=cmd_serve)

    sub = subparsers.add_parser(
        "submit",
        help="submit a scenario grid to a running sweep service",
    )
    sub.add_argument("--grid", required=True,
                     help="scenario grid file (.json/.toml)")
    sub.add_argument("--url", default="http://127.0.0.1:8787",
                     help="service URL (default: http://127.0.0.1:8787)")
    sub.add_argument("--kind", default="sweep",
                     choices=["sweep", "evaluate", "train", "stream"],
                     help="job kind (default: sweep)")
    sub.add_argument("--tenant", default="anonymous",
                     help="tenant name for budget accounting")
    sub.add_argument("--wait", action="store_true",
                     help="stream progress and fetch the result frame")
    sub.add_argument("--timeout", type=float, default=600.0,
                     help="per-request socket timeout and --wait "
                          "deadline in seconds (default: 600)")
    sub.add_argument("--json",
                     help="with --wait: write the result frame JSON here "
                          "instead of stdout")
    sub.set_defaults(func=cmd_submit)

    sub = subparsers.add_parser(
        "stream",
        help="streaming (windowed) evaluation — local or via the service",
    )
    sub.add_argument("programs", nargs="*",
                     help="kernel names or .s files to stream in order "
                          "(default: --source randomgen)")
    _add_design_arguments(sub)
    sub.add_argument("--policy", action="append",
                     help="clock policy (repeatable; also "
                          "'learned:<model.npz>'; default: instruction)")
    sub.add_argument("--generator", action="append",
                     help="clock generator model (repeatable; "
                          "default: ideal)")
    sub.add_argument("--margin", action="append", type=float,
                     help="safety margin in percent (repeatable; "
                          "default: 0)")
    sub.add_argument("--window-cycles", type=int, default=1024,
                     help="cycles per trace window (default: 1024)")
    sub.add_argument("--max-windows", type=int, default=8,
                     help="windows kept in memory (default: 8)")
    sub.add_argument("--source", default="workloads",
                     choices=["workloads", "randomgen"],
                     help="program source when no programs are named "
                          "(default: workloads)")
    sub.add_argument("--seed", type=int, default=1,
                     help="randomgen stream seed (default: 1)")
    sub.add_argument("--count", type=int, default=None,
                     help="stop the randomgen stream after N programs "
                          "(default: unbounded locally; required "
                          "remotely)")
    sub.add_argument("--length", type=int, default=1200,
                     help="randomgen program length (default: 1200)")
    sub.add_argument("--repeats", type=int, default=3,
                     help="randomgen loop repeats (default: 3)")
    sub.add_argument("--unique", type=int, default=None,
                     help="loop over N unique randomgen programs")
    sub.add_argument("--store",
                     help="artifact-store directory (reuses compiled "
                          "traces and LUTs)")
    sub.add_argument("--lut", help="reuse a LUT JSON file")
    sub.add_argument("--quiet", action="store_true",
                     help="suppress per-window rolling lines")
    sub.add_argument("--json",
                     help="write the final result frame JSON here")
    sub.add_argument("--url",
                     help="submit to a running sweep service instead of "
                          "evaluating locally (needs --grid)")
    sub.add_argument("--grid",
                     help="scenario grid file for --url mode (config "
                          "axes of the stream job)")
    sub.add_argument("--tenant", default="anonymous",
                     help="tenant name for --url mode")
    sub.add_argument("--timeout", type=float, default=300.0,
                     help="per-request socket timeout and wait deadline "
                          "for --url mode (default: 300)")
    sub.set_defaults(func=cmd_stream)

    sub = subparsers.add_parser("table2", help="render a LUT (Table II)")
    _add_design_arguments(sub)
    sub.add_argument("--lut", help="LUT JSON file")
    sub.set_defaults(func=cmd_table2)

    sub = subparsers.add_parser(
        "store", help="artifact-store maintenance"
    )
    store_subparsers = sub.add_subparsers(dest="store_command",
                                          required=True)
    gc = store_subparsers.add_parser(
        "gc",
        help="evict least-recently-used artifacts down to a size budget",
    )
    gc.add_argument("--store", required=True,
                    help="artifact-store directory")
    gc.add_argument("--max-size", required=True,
                    help="size budget, e.g. 500M, 2G, 4096 (bytes)")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be evicted without deleting")
    gc.set_defaults(func=cmd_store_gc)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except WorkloadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ModelError as error:
        # learned-policy specs fail fast (before simulation), naming
        # the offending model path
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
