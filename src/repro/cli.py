"""Command-line interface.

Exposes the main flows as subcommands::

    python -m repro kernels                    # list bundled workloads
    python -m repro asm program.s              # assemble + listing
    python -m repro run crc32                  # functional + cycle run
    python -m repro sta [--variant ...]        # static timing analysis
    python -m repro characterize -o lut.json   # full characterisation
    python -m repro evaluate crc32 --policy instruction [--lut lut.json]
    python -m repro table2 [--lut lut.json]    # Table II view of a LUT
    python -m repro store gc --store DIR --max-size 500M [--dry-run]

Scenario grids run whole experiments through the parallel sweep runner
(:mod:`repro.lab`) with a persistent artifact store, e.g.::

    python -m repro sweep --grid grid.json --jobs 4 \\
        --store .repro-store --resume --json sweep.json --csv sweep.csv

where ``grid.json`` declares the axes to cross::

    {"name": "margins", "policies": ["instruction", "genie"],
     "margins": [0.0, 5.0], "voltages": [0.70, 0.80],
     "workloads": ["crc32", "matmult"]}

A warm store skips pipeline simulation and characterisation entirely;
``--resume`` continues an interrupted run from its manifest.

Programs may be given as a bundled kernel name or a path to an assembly
file.
"""

import argparse
import pathlib
import sys

from repro.asm import disassemble_program
from repro.dta.lut import DelayLUT
from repro.flow.characterize import characterize
from repro.sim.iss import FunctionalSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.timing.design import build_design
from repro.timing.profiles import DesignVariant
from repro.timing.sta import run_sta
from repro.timing.wall import wall_profile
from repro.utils.units import ps_to_mhz
from repro.workloads import WorkloadError, all_kernels, resolve_program


def _load_program(spec):
    """Resolve a program argument: bundled kernel name or .s/.asm path.

    Unknown kernels and missing files raise
    :class:`~repro.workloads.WorkloadError`, which ``main`` turns into a
    friendly message (listing the bundled kernels) and a nonzero exit.
    """
    return resolve_program(spec)


def _build(args):
    return build_design(DesignVariant(args.variant), voltage=args.voltage)


def _add_design_arguments(parser):
    parser.add_argument(
        "--variant", default="critical_range",
        choices=[variant.value for variant in DesignVariant],
        help="implementation variant (default: critical_range)",
    )
    parser.add_argument(
        "--voltage", type=float, default=0.70,
        help="supply voltage in volts (default: 0.70)",
    )


def cmd_kernels(args):
    print(f"{'name':14s} {'category':8s} description")
    for kernel in all_kernels():
        print(f"{kernel.name:14s} {kernel.category:8s} {kernel.description}")
    return 0


def cmd_asm(args):
    program = _load_program(args.program)
    print(f"# {program.name}: {program.size_words} words, "
          f"entry {program.entry:#x}")
    print(disassemble_program(program))
    return 0


def cmd_run(args):
    program = _load_program(args.program)
    iss = FunctionalSimulator(program)
    iss.run()
    pipe = PipelineSimulator(program)
    pipe.run()
    if iss.state.regs != pipe.state.regs:
        print("ERROR: ISS and pipeline disagree", file=sys.stderr)
        return 1
    print(f"{program.name}: {iss.state.instret} instructions, "
          f"{pipe.trace.num_cycles} cycles (CPI {pipe.trace.cpi:.3f})")
    print(f"r11 = {iss.state.regs[11]} ({iss.state.regs[11]:#010x})")
    if args.regs:
        for index in range(0, 32, 4):
            print("  " + "  ".join(
                f"r{r:<2d}={iss.state.regs[r]:#010x}"
                for r in range(index, index + 4)
            ))
    return 0


def cmd_sta(args):
    design = _build(args)
    report = run_sta(design.netlist)
    print(report.summary())
    print(wall_profile(design.netlist).summary())
    print(f"clock bound: {report.critical_delay_ps:.0f} ps = "
          f"{ps_to_mhz(report.critical_delay_ps):.1f} MHz "
          f"@ {args.voltage:.2f} V")
    return 0


def cmd_characterize(args):
    design = _build(args)
    print(f"characterising {design.name} ...", file=sys.stderr)
    result = characterize(design, keep_runs=False)
    text = result.lut.to_json()
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output} ({result.total_cycles} cycles, "
              f"{len(result.lut.classes())} classes)")
    else:
        print(text)
    return 0


def _load_lut(args, design):
    if args.lut:
        return DelayLUT.from_json(pathlib.Path(args.lut).read_text())
    print("no --lut given: characterising on the fly ...", file=sys.stderr)
    return characterize(design, keep_runs=False).lut


def cmd_evaluate(args):
    from repro.core import DcaConfig, DynamicClockAdjustment
    from repro.flow.characterize import CharacterizationResult

    program = _load_program(args.program)   # fail fast on a bad spec
    design = _build(args)
    lut = _load_lut(args, design)
    dca = DynamicClockAdjustment(
        config=DcaConfig(
            variant=design.variant, voltage=args.voltage,
            policy=args.policy, generator=args.generator,
            margin_percent=args.margin,
        ),
        characterization=CharacterizationResult(design=design, lut=lut),
    )
    result = dca.evaluate(program)
    print(result.summary())
    if not result.is_safe:
        worst = max(result.violations, key=lambda v: v.overshoot_ps)
        print(f"WORST VIOLATION: cycle {worst.cycle} stage "
              f"{worst.stage.name} overshoot {worst.overshoot_ps:.1f} ps")
        return 1
    return 0


def cmd_sweep(args):
    from repro.core import DcaConfig, DynamicClockAdjustment
    from repro.dta.compiled import set_trace_store
    from repro.flow.characterize import CharacterizationResult
    from repro.workloads.suite import benchmark_suite

    if args.grid:
        return _run_grid_sweep(args)
    if args.resume or args.jobs != 1 or args.json:
        print("--resume/--jobs/--json require a scenario grid (--grid)",
              file=sys.stderr)
        return 2

    if args.programs:
        programs = [_load_program(spec) for spec in args.programs]
    else:
        programs = benchmark_suite()
    design = _build(args)
    store = previous_store = None
    if args.store:
        from repro.lab.store import ArtifactStore

        store = ArtifactStore(args.store)
        previous_store = set_trace_store(store)
    try:
        if store is not None and not args.lut:
            lut = store.get_lut(design)
        else:
            lut = _load_lut(args, design)
        dca = DynamicClockAdjustment(
            config=DcaConfig(variant=design.variant, voltage=args.voltage),
            characterization=CharacterizationResult(design=design, lut=lut),
        )
        return _run_flag_sweep(args, dca, programs)
    finally:
        if store is not None:
            set_trace_store(previous_store)


def _run_flag_sweep(args, dca, programs):
    """Legacy flag-driven sweep (no scenario grid)."""
    from repro.flow.evaluate import (
        average_frequency_mhz,
        average_speedup_percent,
    )
    from repro.flow.figures import sweep_series, write_csv
    from repro.utils.tables import format_table

    configs, results = dca.evaluate_sweep(
        programs,
        policies=args.policy or ["instruction", "ex-only", "two-class",
                                 "genie"],
        generators=args.generator or ["ideal"],
        margins=args.margin if args.margin else [0.0],
        check_safety=args.check_safety,
    )
    rows = []
    unsafe = 0
    for config, row in zip(configs, results):
        violations = sum(len(result.violations) for result in row)
        unsafe += violations
        rows.append((
            config.label,
            f"{average_frequency_mhz(row):.0f}",
            f"{average_speedup_percent(row):+.1f}%",
            f"{violations}",
        ))
    print(format_table(
        ["Configuration", "Avg. [MHz]", "Avg. speedup", "Violations"],
        rows,
        title=f"Sweep: {len(programs)} programs x {len(configs)} configs "
              f"@ {args.voltage:.2f} V",
    ))
    if args.csv:
        header, series = sweep_series(
            [config.label for config in configs], results
        )
        write_csv(args.csv, header, series)
        print(f"wrote {args.csv} ({len(series)} rows)")
    return 1 if (args.check_safety and unsafe) else 0


def _run_grid_sweep(args):
    """Scenario-grid mode: the parallel runner + artifact store."""
    from repro.lab import ArtifactStore, ScenarioGrid, SweepRunner
    from repro.lab.scenario import ScenarioError
    from repro.utils.tables import format_table

    if (args.programs or args.policy or args.generator or args.margin
            or args.check_safety or args.lut
            or args.variant != "critical_range" or args.voltage != 0.70):
        print("--grid mode takes every axis from the grid file; drop the "
              "positional programs and the --policy/--generator/--margin/"
              "--check-safety/--lut/--variant/--voltage flags",
              file=sys.stderr)
        return 2
    try:
        grid = ScenarioGrid.from_file(args.grid)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    store = ArtifactStore(args.store) if args.store else None
    runner = SweepRunner(grid, store=store, jobs=args.jobs)
    result = runner.run(
        resume=args.resume,
        progress=lambda line: print(line, file=sys.stderr),
    )

    specs = grid.config_specs()
    by_config = {spec.label: [] for spec in specs}
    for row in result.rows:
        by_config[row["config"]].append(row)
    table_rows = []
    for point in grid.design_points():
        for spec in specs:
            rows = [row for row in by_config[spec.label]
                    if row["design_point"] == point.label]

            def mean(key, rows=rows):
                return sum(row[key] for row in rows) / len(rows)

            table_rows.append((
                point.label,
                spec.label,
                f"{mean('effective_frequency_mhz'):.0f}",
                f"{mean('speedup_percent'):+.1f}%",
                f"{sum(row['num_violations'] for row in rows)}",
            ))
    print(format_table(
        ["Design point", "Configuration", "Avg. [MHz]", "Avg. speedup",
         "Violations"],
        table_rows,
        title=(
            f"Grid '{grid.name}': {result.units_total} units "
            f"({result.units_resumed} resumed) x {len(specs)} configs "
            f"in {result.seconds:.2f} s, jobs={result.jobs}"
        ),
    ))
    if result.store_stats is not None:
        print(f"store: {result.store_stats.summary()}; "
              f"simulations run: {result.simulations}")
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json}")
    if args.csv:
        result.write_csv(args.csv)
        print(f"wrote {args.csv} ({len(result.rows)} rows)")
    return 1 if (grid.check_safety and result.num_violations) else 0


def cmd_table2(args):
    design = _build(args)
    lut = _load_lut(args, design)
    print(lut.render())
    return 0


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_size(text):
    """Parse a size budget like ``500M``, ``1.5G``, ``4096`` (bytes)."""
    text = text.strip().lower().removesuffix("b")
    factor = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"invalid size {text!r}") from None
    if value < 0:
        raise ValueError("size budget cannot be negative")
    return int(value * factor)


def cmd_store_gc(args):
    """LRU store eviction: keep the most recently used artifacts within
    the size budget (artifact loads refresh their mtime)."""
    from repro.lab.store import ArtifactStore

    try:
        budget = parse_size(args.max_size)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = ArtifactStore(args.store)
    if not store.root.is_dir():
        print(f"error: store directory {store.root} does not exist",
              file=sys.stderr)
        return 2
    result = store.gc(max_bytes=budget, dry_run=args.dry_run)
    prefix = "would evict" if args.dry_run else "evicted"
    print(f"{store.root}: {result.scanned_files} artifacts scanned; "
          f"{prefix} {result.removed_files} "
          f"({result.removed_bytes} B), kept {result.kept_files} "
          f"({result.kept_bytes} B) within {budget} B")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Instruction-based dynamic clock adjustment "
                    "(DATE 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("kernels", help="list bundled workloads")
    sub.set_defaults(func=cmd_kernels)

    sub = subparsers.add_parser("asm", help="assemble and list a program")
    sub.add_argument("program", help="kernel name or assembly file")
    sub.set_defaults(func=cmd_asm)

    sub = subparsers.add_parser("run", help="run a program functionally "
                                            "and cycle-accurately")
    sub.add_argument("program")
    sub.add_argument("--regs", action="store_true",
                     help="dump the full register file")
    sub.set_defaults(func=cmd_run)

    sub = subparsers.add_parser("sta", help="static timing analysis")
    _add_design_arguments(sub)
    sub.set_defaults(func=cmd_sta)

    sub = subparsers.add_parser("characterize",
                                help="extract the delay LUT")
    _add_design_arguments(sub)
    sub.add_argument("-o", "--output", help="write the LUT as JSON")
    sub.set_defaults(func=cmd_characterize)

    sub = subparsers.add_parser("evaluate",
                                help="evaluate a program under a policy")
    sub.add_argument("program")
    _add_design_arguments(sub)
    sub.add_argument("--policy", default="instruction",
                     choices=["instruction", "ex-only", "two-class",
                              "genie", "static"])
    sub.add_argument("--generator", default="ideal",
                     choices=["ideal", "ring", "pll"])
    sub.add_argument("--margin", type=float, default=0.0,
                     help="safety margin in percent")
    sub.add_argument("--lut", help="reuse a LUT JSON file")
    sub.set_defaults(func=cmd_evaluate)

    sub = subparsers.add_parser(
        "sweep",
        help="batch-evaluate programs under many configurations",
    )
    sub.add_argument("programs", nargs="*",
                     help="kernel names or assembly files "
                          "(default: the Fig. 8 benchmark suite)")
    _add_design_arguments(sub)
    sub.add_argument("--policy", action="append",
                     choices=["instruction", "ex-only", "two-class",
                              "genie", "static"],
                     help="policy to sweep (repeatable; default: all "
                          "non-static policies)")
    sub.add_argument("--generator", action="append",
                     choices=["ideal", "ring", "pll"],
                     help="generator to sweep (repeatable; default: ideal)")
    sub.add_argument("--margin", action="append", type=float,
                     help="safety margin in percent (repeatable; default: 0)")
    sub.add_argument("--check-safety", action="store_true",
                     help="replay ground-truth delays and count violations")
    sub.add_argument("--csv", help="write the per-benchmark series as CSV")
    sub.add_argument("--lut", help="reuse a LUT JSON file")
    sub.add_argument("--grid",
                     help="scenario grid file (.json/.toml); runs the "
                          "parallel sweep runner instead of the one-shot "
                          "policy sweep")
    sub.add_argument("--jobs", type=int, default=1,
                     help="worker processes for --grid mode (default: 1)")
    sub.add_argument("--store",
                     help="artifact-store directory: compiled traces and "
                          "LUTs are cached here across runs")
    sub.add_argument("--resume", action="store_true",
                     help="reuse completed units from the run manifest of "
                          "an interrupted --grid run")
    sub.add_argument("--json",
                     help="write the merged grid results as JSON")
    sub.set_defaults(func=cmd_sweep)

    sub = subparsers.add_parser("table2", help="render a LUT (Table II)")
    _add_design_arguments(sub)
    sub.add_argument("--lut", help="LUT JSON file")
    sub.set_defaults(func=cmd_table2)

    sub = subparsers.add_parser(
        "store", help="artifact-store maintenance"
    )
    store_subparsers = sub.add_subparsers(dest="store_command",
                                          required=True)
    gc = store_subparsers.add_parser(
        "gc",
        help="evict least-recently-used artifacts down to a size budget",
    )
    gc.add_argument("--store", required=True,
                    help="artifact-store directory")
    gc.add_argument("--max-size", required=True,
                    help="size budget, e.g. 500M, 2G, 4096 (bytes)")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be evicted without deleting")
    gc.set_defaults(func=cmd_store_gc)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except WorkloadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
