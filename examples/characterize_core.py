#!/usr/bin/env python
"""Characterisation deep-dive: the paper's design flow, step by step.

Reproduces Sec. II-B / IV-A interactively:

1. static timing analysis of both design variants (conventional vs.
   critical-range) and the Fig. 3 timing-wall comparison,
2. gate-level simulation of a characterisation program,
3. dynamic timing analysis: per-cycle slack, the Fig. 5 histogram, the
   Fig. 6 limiting-stage shares,
4. per-instruction extraction into the delay LUT (Table II), with the
   static fallback for under-characterised instructions.

Run:  python examples/characterize_core.py
"""

import numpy as np

from repro.dta.analyzer import analyze_event_log
from repro.dta.extraction import extract_lut
from repro.dta.gatesim import run_gatesim
from repro.sim.trace import Stage
from repro.timing.design import build_design
from repro.timing.profiles import DesignVariant
from repro.timing.sta import run_sta
from repro.timing.wall import compare_walls
from repro.workloads.randomgen import generate_characterization_program


def main():
    # -- step 1: implementation & STA ------------------------------------
    conventional = build_design(DesignVariant.CONVENTIONAL)
    optimized = build_design(DesignVariant.CRITICAL_RANGE)
    print("=== Step 1: static timing analysis ===")
    for design in (conventional, optimized):
        report = run_sta(design.netlist)
        print(f"{design.name}: STA period {report.critical_delay_ps:.0f} ps "
              f"({1e6 / report.critical_delay_ps:.0f} MHz), "
              f"critical path {report.critical_path}")
    wall_conv, wall_opt = compare_walls(
        conventional.netlist, optimized.netlist
    )
    print(wall_conv.summary())
    print(wall_opt.summary())

    # -- step 2: gate-level simulation -------------------------------------
    print("\n=== Step 2: gate-level simulation (directed semi-random) ===")
    program = generate_characterization_program(seed=1, length=800,
                                                repeats=2)
    result = run_gatesim(program, optimized)
    print(f"{result.program_name}: {result.num_cycles} cycles, "
          f"{result.event_log.num_events} endpoint events "
          f"@ sim period {result.event_log.sim_period_ps:.0f} ps")

    # -- step 3: dynamic timing analysis -----------------------------------
    print("\n=== Step 3: dynamic timing analysis ===")
    dta = analyze_event_log(result.event_log)
    print(f"mean per-cycle worst delay: {dta.mean_cycle_delay_ps:.0f} ps "
          f"(static bound {optimized.static_period_ps:.0f} ps)")
    print(f"genie-aided speedup bound: "
          f"{dta.genie_speedup_percent(optimized.static_period_ps):.1f} %")
    shares = dta.limiting_stage_shares()
    print("limiting-stage shares: " + ", ".join(
        f"{stage.name} {100 * shares[stage]:.1f}%" for stage in Stage
    ))

    # -- step 4: instruction timing extraction ------------------------------
    print("\n=== Step 4: per-instruction extraction (Table II) ===")
    lut = extract_lut(dta, result.trace, optimized.static_period_ps,
                      min_occurrences=20)
    print(lut.render(classes=[
        "l.add(i)", "l.and(i)", "l.bf", "l.j", "l.lwz", "l.mul(i)",
        "l.sll(i)", "l.xor(i)", "<bubble>",
    ]))

    fallbacks = [
        cls for cls in lut.classes() if not lut.is_characterized(cls)
    ]
    if fallbacks:
        print(f"static-fallback classes (too few occurrences): {fallbacks}")

    # sanity: the extraction must stay below the STA bound everywhere
    worst = max(lut.class_max(cls) for cls in lut.classes()
                if lut.is_characterized(cls))
    margin = optimized.static_period_ps - worst
    print(f"\nworst characterised delay {worst:.0f} ps -> "
          f"{margin:.0f} ps of static margin never used at runtime")
    assert margin > 0


if __name__ == "__main__":
    main()
