#!/usr/bin/env python
"""Online LUT adaptation under PVT drift (the paper's Sec. V outlook).

The characterised delay LUT is only valid at the conditions it was
extracted at.  When temperature swings, the supply droops and the chip
ages, all delays drift — and the paper suggests handling this "by
(online-)updating of the used delay prediction table".  This example runs
a kernel in a drifting environment under three schemes and shows that
online updating keeps both the safety of a worst-case guard band and most
of the nominal speed.

Run:  python examples/pvt_adaptation.py
"""

from repro.adapt.environment import EnvironmentModel
from repro.api import Session


def main():
    print("characterising the core at nominal conditions ...")
    session = Session()

    environment = EnvironmentModel()
    print(f"\nenvironment: ±{100 * environment.temperature_amplitude:.0f} % "
          f"thermal swing, {100 * environment.droop_amplitude:.0f} % supply "
          f"droops, {100 * environment.aging_total:.0f} % aging ramp")

    # one frame: a row per (program, scheme)
    frame = session.adapt(["crc32"], environment)

    print("\n        scheme | f_eff [MHz] | violations | LUT updates")
    for row in frame.iter_rows():
        print(f"{row['scheme']:>14} |"
              f" {row['effective_frequency_mhz']:11.1f} |"
              f" {row['violations']:10d} | {row['lut_updates']:11d}")

    online = frame.where(scheme="online").row(0)
    guard = frame.where(scheme="fixed-guard").row(0)
    unguarded = frame.where(scheme="fixed-none").row(0)
    recovered = (
        online["effective_frequency_mhz"] / guard["effective_frequency_mhz"]
        - 1
    ) * 100
    print(f"\nmax drift during the run: {online['max_drift_seen']:.3f}x")
    print(f"online updating is error-free and {recovered:.1f} % faster than "
          f"the static worst-case guard band.")
    print("without any guard band the nominal LUT violates timing "
          f"{unguarded['violations']} times — the scheme the "
          "paper's conclusion warns against.")


if __name__ == "__main__":
    main()
