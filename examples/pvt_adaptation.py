#!/usr/bin/env python
"""Online LUT adaptation under PVT drift (the paper's Sec. V outlook).

The characterised delay LUT is only valid at the conditions it was
extracted at.  When temperature swings, the supply droops and the chip
ages, all delays drift — and the paper suggests handling this "by
(online-)updating of the used delay prediction table".  This example runs
a kernel in a drifting environment under three schemes and shows that
online updating keeps both the safety of a worst-case guard band and most
of the nominal speed.

Run:  python examples/pvt_adaptation.py
"""

from repro.adapt.environment import EnvironmentModel
from repro.adapt.online import compare_schemes
from repro.core import DynamicClockAdjustment
from repro.workloads import get_kernel


def main():
    print("characterising the core at nominal conditions ...")
    dca = DynamicClockAdjustment()
    program = get_kernel("crc32").program()

    environment = EnvironmentModel()
    print(f"\nenvironment: ±{100 * environment.temperature_amplitude:.0f} % "
          f"thermal swing, {100 * environment.droop_amplitude:.0f} % supply "
          f"droops, {100 * environment.aging_total:.0f} % aging ramp")

    results = compare_schemes(program, dca.design, dca.lut, environment)

    print("\n        scheme | f_eff [MHz] | violations | LUT updates")
    for scheme in ("fixed-none", "fixed-guard", "online"):
        result = results[scheme]
        print(f"{scheme:>14} | {result.effective_frequency_mhz:11.1f} |"
              f" {result.violations:10d} | {result.lut_updates:11d}")

    online = results["online"]
    guard = results["fixed-guard"]
    recovered = (
        online.effective_frequency_mhz / guard.effective_frequency_mhz - 1
    ) * 100
    print(f"\nmax drift during the run: {online.max_drift_seen:.3f}x")
    print(f"online updating is error-free and {recovered:.1f} % faster than "
          f"the static worst-case guard band.")
    print("without any guard band the nominal LUT violates timing "
          f"{results['fixed-none'].violations} times — the scheme the "
          "paper's conclusion warns against.")


if __name__ == "__main__":
    main()
