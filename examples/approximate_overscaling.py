#!/usr/bin/env python
"""Approximate computing by over-scaling (the paper's Sec. IV-A outlook).

The paper observes that the ~300 ps data-dependent delay spread of the
multiplier "could be further leveraged by approximate computing
techniques", trading exactness for speed.  This example clocks a
multiply-heavy kernel beyond the safe per-instruction bound and reports
how the error rate and error magnitude grow as the clock shrinks.

Run:  python examples/approximate_overscaling.py
"""

from repro.api import Session


def main():
    print("characterising the core ...")
    session = Session()

    safe = session.evaluate(["matmult"]).row(0)
    print(f"\nsafe operation: {safe['effective_frequency_mhz']:.0f} MHz, "
          f"{safe['num_violations']} violations "
          f"(speedup {safe['speedup_percent']:+.1f} % over static)")

    print("\nover-scaling sweep (clock = factor x LUT period):")
    print("  factor | f_eff [MHz] | violating cycles | approx results |"
          " mean bad bits | mean rel. error")
    frame = session.overscaling(
        ["matmult"],
        factors=[1.0, 0.97, 0.94, 0.91, 0.88, 0.85, 0.82],
    )
    for row in frame.iter_rows():
        frequency = row["num_cycles"] / row["total_time_ps"] * 1e6
        print(f"  x{row['overscale_factor']:5.2f} | {frequency:11.0f} |"
              f" {row['violation_cycles']:16d} |"
              f" {row['num_approx_results']:14d} |"
              f" {row['mean_corrupted_bits']:13.1f} |"
              f" {row['mean_relative_error']:15.4f}")

    deep = frame.row(len(frame) - 1)
    print("\nviolations by stage group:", deep["violations_by_stage"])
    print("violations by driver class:", dict(sorted(
        deep["violations_by_class"].items(), key=lambda kv: -kv[1]
    )[:5]))
    print("\nthe multiplier's deep data-dependent paths fail first — the")
    print("paper's candidate for approximate-computing exploitation.")


if __name__ == "__main__":
    main()
