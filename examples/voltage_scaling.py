#!/usr/bin/env python
"""Voltage-frequency scaling: trading the speedup for power (Sec. IV-B).

Evaluates the benchmark suite with instruction-based dynamic clock
adjustment, then finds the lowest supply voltage at which the
dynamically-clocked core still matches the conventional core's
throughput — converting the +38 %-class speedup into a ~24 % energy
efficiency improvement, as the paper does.

Run:  python examples/voltage_scaling.py
"""

from repro.api import Session
from repro.power.model import PowerModel
from repro.power.vfs import scale_voltage_iso_throughput
from repro.workloads.suite import suite_names


def main():
    print("characterising and evaluating the suite ...")
    session = Session()
    # no programs argument -> the full Fig. 8 benchmark suite
    frame = session.evaluate(check_safety=False)

    print(f"\nsuite: {', '.join(suite_names())}")
    static_mhz = session.static_frequency_mhz
    dynamic_mhz = float(frame["effective_frequency_mhz"].mean())
    print(f"conventional clocking: {static_mhz:.0f} MHz")
    print(f"dynamic adjustment:    {dynamic_mhz:.0f} MHz "
          f"({(dynamic_mhz / static_mhz - 1) * 100:+.1f} %)")

    # -- iso-throughput voltage scaling -----------------------------------
    scaling = scale_voltage_iso_throughput(dynamic_mhz, static_mhz)
    print("\n" + scaling.summary())

    # -- the full trade-off curve ------------------------------------------
    model = PowerModel()
    print("\nsupply sweep (dynamic clocking, iso-throughput check):")
    print("  V_dd  | f_dyn [MHz] | meets 494 MHz | uW/MHz @494")
    from repro.timing.library import delay_scale_factor
    for millivolts in range(700, 570, -10):
        voltage = millivolts / 1000.0
        stretch = delay_scale_factor(voltage) / delay_scale_factor(0.70)
        frequency = dynamic_mhz / stretch
        meets = frequency >= static_mhz
        efficiency = model.uw_per_mhz(voltage, static_mhz)
        marker = "yes" if meets else "no "
        print(f"  {voltage:.2f}  | {frequency:11.0f} | {marker:>13} |"
              f" {efficiency:11.2f}")

    gain = scaling.efficiency_gain_percent
    print(f"\nenergy-efficiency gain at the chosen point: {gain:.0f} % "
          f"(paper: 24 %)")


if __name__ == "__main__":
    main()
