#!/usr/bin/env python
"""Quickstart: assemble a program, characterise the core, over-scale it.

This walks the paper's full loop in ~30 seconds through the public API
(:mod:`repro.api`):

1. build a :class:`repro.api.Session` for the critical-range OpenRISC
   design at 0.70 V,
2. characterise it (gate-level simulation -> dynamic timing analysis ->
   per-instruction delay LUT) — the Session does this lazily,
3. run a small program under conventional clocking and under
   instruction-based dynamic clock adjustment, and
4. verify that the faster run had zero timing violations.

Run:  python examples/quickstart.py
"""

from repro import assemble
from repro.api import Session

SOURCE = """
# sum of squares 1..20
start:
    l.addi  r2, r0, 20         # n
    l.addi  r11, r0, 0         # acc
loop:
    l.mul   r3, r2, r2
    l.add   r11, r11, r3
    l.addi  r2, r2, -1
    l.sfgtsi r2, 0
    l.bf    loop
    l.nop
    l.nop   0x1                # halt
    l.nop
    l.nop
"""


def main():
    program = assemble(SOURCE, name="sum-of-squares")

    print("characterising the core (this is the expensive step) ...")
    session = Session()

    print(f"\nSTA-limited clock: {session.static_frequency_mhz:.1f} MHz "
          f"({session.static_period_ps:.0f} ps)")

    # one call, one columnar frame: a row per (policy, program)
    frame = session.evaluate(
        [program], policies=["static", "instruction", "genie"],
        check_safety=True,
    )

    print(f"\narchitectural result: r11 = "
          f"{sum(i * i for i in range(1, 21))} (verified by the test suite)")
    print("\n           policy |  f_eff [MHz] | speedup | violations")
    for row in frame.iter_rows():
        print(f"{row['policy']:>17} |"
              f" {row['effective_frequency_mhz']:12.1f}"
              f" | {row['speedup_percent']:+6.1f}%"
              f" | {row['num_violations']:10d}")

    dynamic = frame.where(policy="instruction").row(0)
    assert dynamic["num_violations"] == 0, \
        "the predictive scheme must be error-free"
    print("\nno timing violations: frequency-over-scaling without errors.")

    print("\nDelay-prediction LUT excerpt (paper Table II):")
    print(session.lut.render(classes=[
        "l.add(i)", "l.mul(i)", "l.lwz", "l.bf", "l.j", "l.sll(i)",
    ]))


if __name__ == "__main__":
    main()
