#!/usr/bin/env python
"""Closed-loop streaming: a live workload, drift, and a learned policy.

The offline engine answers "what would this kernel do"; the streaming
engine answers "what is the chip doing *right now*".  This demo drives
both halves of :mod:`repro.stream` the way a bench harness would:

1. train a small learned policy (ML-DFS) on two kernels,
2. evaluate an endless-looking randomgen stream window by window,
   acting on every :class:`~repro.stream.WindowUpdate` as it arrives —
   the closed loop a frequency governor would run, and
3. replay the same stream under environmental drift with the online
   LUT-update scheme, watching the adaptation track the environment.

The final frames are byte-identical to the offline engine on the same
programs — streaming changes *when* you see results, never *what* they
are.

Run:  python examples/stream_live.py
"""

import tempfile
from pathlib import Path

from repro.adapt.environment import EnvironmentModel
from repro.api import Session
from repro.lab.scenario import ScenarioGrid
from repro.ml.train import TrainerConfig, train_policy
from repro.stream import StreamingSession, random_source

WINDOW_CYCLES = 512


def main():
    # 1. a learned policy to deploy on the stream (seeded: deterministic)
    print("training a learned policy on fib + crc16 ...")
    grid = ScenarioGrid(
        name="stream-demo-training",
        policies=("instruction", "genie"),
        margins=(0.0,),
        voltages=(0.70,),
        workloads=("fib", "crc16"),
        check_safety=True,
    )
    outcome = train_policy(grid, TrainerConfig(seed=0))
    model_path = Path(tempfile.mkdtemp()) / "model.npz"
    outcome.model.save(model_path)

    session = Session(voltage=0.70)
    streaming = StreamingSession(session, window_cycles=WINDOW_CYCLES)

    # 2. the closed loop: act on each window as it lands.  A real
    #    governor would nudge the PLL here; we track the rolling best
    #    config and flag any window that brought violations.
    def on_window(update):
        rows = update.frame.to_rows()
        best = max(rows, key=lambda r: r["effective_frequency_mhz"])
        flag = " !" if any(r["num_violations"] for r in rows) else ""
        print(f"  {update.program} window {update.index:3d} "
              f"[{update.start_cycle}..{update.start_cycle + update.num_cycles}) "
              f"stream={update.stream_cycles} cyc: "
              f"{best['config']} {best['effective_frequency_mhz']:.0f} MHz"
              f"{flag}")

    print(f"\nstreaming 4 randomgen programs, {WINDOW_CYCLES}-cycle windows:")
    source = random_source(seed=11, count=4, length=600, repeats=2)
    frame = streaming.evaluate(
        source,
        policies=[f"learned:{model_path}", "instruction", "static"],
        on_window=on_window,
    )

    summary = frame.group_by("policy", {
        "mhz": ("effective_frequency_mhz", "mean"),
        "violations": ("num_violations", "sum"),
    })
    print()
    for row in summary.iter_rows():
        name = row["policy"].split(":")[0]
        print(f"{name:>12}: {row['mhz']:6.1f} MHz avg, "
              f"{int(row['violations'])} violations")

    # the stream result is the offline result — bit for bit
    offline = session.evaluate(
        list(random_source(seed=11, count=4, length=600, repeats=2)),
        policies=[f"learned:{model_path}", "instruction", "static"],
    )
    assert frame.to_json() == offline.to_json()
    print("\nstream frame == offline frame (byte-identical)")

    # 3. the same stream under drift, with online LUT updating keeping
    #    the margin honest while the environment moves under the chip
    environment = EnvironmentModel()
    print(f"\nreplaying under drift (±{100 * environment.temperature_amplitude:.0f} % "
          "thermal swing) with online LUT updates:")
    adapt = streaming.adapt(
        random_source(seed=11, count=4, length=600, repeats=2),
        environment,
        schemes=["online", "fixed-guard"],
        on_window=lambda u: print(
            f"  {u.program} window {u.index:3d} [{u.scheme}] "
            f"stream={u.stream_cycles} cyc"),
    )
    online = adapt.where(scheme="online")
    guard = adapt.where(scheme="fixed-guard")
    gain = (online["effective_frequency_mhz"].mean()
            / guard["effective_frequency_mhz"].mean() - 1) * 100
    print(f"\nonline adaptation: {int(online['violations'].sum())} violations, "
          f"{gain:+.1f} % over the static worst-case guard band")


if __name__ == "__main__":
    main()
