#!/usr/bin/env python
"""Train, calibrate and deploy a learned clock policy (ML-DFS).

Walks the full :mod:`repro.ml` loop:

1. declare a training grid (which design points and workloads supply
   the per-cycle genie ground truth),
2. train the decision-tree period predictor with
   :func:`repro.ml.train.train_policy` — the trainer sweeps the grid
   through ``Session.training_table`` (recording per-policy baselines),
   extracts per-cycle features from the compiled traces, fits a
   deterministic envelope regressor and calibrates it for safety
   against the genie oracle over the full benchmark suite,
3. save the byte-deterministic ``model.npz`` artifact, and
4. deploy it through the policy registry (``learned:<path>``) next to
   the paper's fixed policies, verifying zero timing violations and the
   frequency gain over static clocking.

Run:  python examples/train_policy.py
"""

import tempfile
from pathlib import Path

from repro.api import Session
from repro.lab.scenario import ScenarioGrid
from repro.ml.train import TrainerConfig, train_policy

# 1. the training corpus: one design point, three kernels, with the
#    instruction-LUT and genie policies as recorded baselines
grid = ScenarioGrid(
    name="example-training",
    policies=("instruction", "genie"),
    margins=(0.0,),
    voltages=(0.70,),
    workloads=("fib", "crc16", "matmult"),
    check_safety=True,
)

# 2. train + calibrate (pure NumPy, deterministic given the seed)
outcome = train_policy(grid, TrainerConfig(seed=0), progress=print)
model = outcome.model
print(f"\ntrained a {model.kind} with {model.num_leaves} leaves on "
      f"{outcome.report['train_rows']} cycles; mean normalized period "
      f"{outcome.report['mean_normalized_period']:.3f}")

# 3. persist the artifact (deploys anywhere as learned:<path>)
model_path = Path(tempfile.mkdtemp()) / "model.npz"
model.save(model_path)
print(f"saved {model_path}")

# 4. deploy through the registry and compare against the paper's
#    policies on the full benchmark suite
session = Session(voltage=0.70)
frame = session.evaluate(
    None,   # the Fig. 8 benchmark suite
    policies=[f"learned:{model_path}", "instruction", "static"],
    check_safety=True,
)
summary = frame.group_by("policy", {
    "mhz": ("effective_frequency_mhz", "mean"),
    "speedup": ("speedup_percent", "mean"),
    "speedup_p95": ("speedup_percent", "p95"),
    "violations": ("num_violations", "sum"),
})
print()
for row in summary.iter_rows():
    name = row["policy"].split(":")[0]
    print(f"{name:>12}: {row['mhz']:6.1f} MHz avg "
          f"({row['speedup']:+5.1f} % mean, "
          f"{row['speedup_p95']:+5.1f} % p95), "
          f"{int(row['violations'])} violations")

learned = summary.where(policy=f"learned:{model_path}").row(0)
static = summary.where(policy="static").row(0)
assert learned["violations"] == 0, "learned policy must be safe"
assert learned["mhz"] > static["mhz"], "and faster than static clocking"
print("\nlearned policy: zero violations, "
      f"+{learned['mhz'] - static['mhz']:.0f} MHz over static")
