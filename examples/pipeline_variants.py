#!/usr/bin/env python
"""Sweep one kernel across every pipeline-spec preset.

The microarchitecture is a parameter (:mod:`repro.sim.spec`): stage
layout, forwarding, functional-unit latencies.  This example evaluates
the same kernel on every registered preset and prints a per-spec
frequency/violation table — the over-scaling headroom the
per-instruction policy finds *changes with the machine*, because the
machine changes which timing classes drive each cycle.

Two things worth noticing in the output:

- deeper front ends (``deep7``) pay extra squashed slots per taken
  branch and interlock-heavy presets (``nofwd6``, ``slowmem6``) stretch
  the cycle count — the architectural result never changes;
- the predictive policy stays violation-free on every preset, by the
  same characterise-then-cover argument as the baseline machine.

The default preset must also be *bit-identical* to the machine the
repo's golden corpus pins — this example re-derives the golden fib
trace and asserts equality, so it doubles as a docs-level regression
check (CI runs it as a smoke test).

Run:  python examples/pipeline_variants.py
"""

import pathlib

import numpy as np

from repro.api import Session
from repro.dta.compiled import compile_vector_run
from repro.sim import vector
from repro.sim.spec import PIPELINE_VARIANTS, get_pipeline_spec
from repro.timing.design import build_design
from repro.workloads import get_kernel

KERNEL = "fib"

GOLDEN = (pathlib.Path(__file__).resolve().parent.parent
          / "tests" / "golden" / "fib-critical_range-0.70V.npz")


def assert_default_matches_golden(program):
    """The default spec IS today's machine: re-derive the golden fib
    trace and require bit-identity."""
    if not GOLDEN.is_file():
        print("(golden corpus not present; skipping identity check)")
        return
    design = build_design()
    run = vector.simulate(program)
    compiled = compile_vector_run(run, design.excitation)
    with np.load(GOLDEN, allow_pickle=False) as data:
        assert compiled.num_cycles == int(data["num_cycles"])
        for field in ("class_ids", "bubble", "held", "stall",
                      "redirect", "delays"):
            assert np.array_equal(getattr(compiled, field), data[field]), \
                f"default spec drifted from the golden corpus: {field}"
    print("default spec matches the golden corpus bit-for-bit.")


def main():
    program = get_kernel(KERNEL).program()
    assert_default_matches_golden(program)

    print(f"\nsweeping '{KERNEL}' across {len(PIPELINE_VARIANTS)} "
          "pipeline presets ...\n")
    header = (f"{'preset':>10} | stages | fwd | {'cycles':>7} | "
              f"{'f_static':>8} | {'f_eff':>8} | speedup | violations")
    print(header)
    print("-" * len(header))

    rows = []
    for name in sorted(PIPELINE_VARIANTS):
        spec = get_pipeline_spec(name)
        session = Session(pipeline_spec=name)
        frame = session.evaluate(
            [program], policies=["instruction"], check_safety=True,
        )
        row = frame.row(0)
        rows.append(row)
        print(f"{name:>10} | {spec.num_stages:^6} |"
              f" {'on' if spec.forwarding else 'off':^3} |"
              f" {row['num_cycles']:7d} |"
              f" {1e6 / row['static_period_ps']:7.1f}M |"
              f" {row['effective_frequency_mhz']:7.1f}M |"
              f" {row['speedup_percent']:+6.1f}% |"
              f" {row['num_violations']:10d}")

    assert all(row["num_violations"] == 0 for row in rows), \
        "the predictive policy must be violation-free on every preset"
    retired = {row["num_retired"] for row in rows}
    assert len(retired) == 1, \
        "architectural semantics must be spec-invariant"
    print("\nzero violations on every preset; retired instruction count "
          "identical across microarchitectures.")


if __name__ == "__main__":
    main()
